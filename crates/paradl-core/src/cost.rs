//! The analytical cost model (paper Table 3 and Appendix A).
//!
//! For each strategy we compute the per-epoch computation time, the per-epoch
//! communication time broken down by phase, and the maximum memory per PE.
//! The formulas are transcribed directly from the paper; the per-layer compute
//! times `FW_l`, `BW_l`, `WU_l` come from a [`ComputeModel`] and the
//! communication parameters from the [`ClusterSpec`] / [`CommModel`].

use crate::cluster::ClusterSpec;
use crate::comm::CommModel;
use crate::compute::ComputeModel;
use crate::config::TrainingConfig;
use crate::memory;
use crate::model::Model;
use crate::strategy::{SpatialSplit, Strategy};

/// Time breakdown of one epoch (or one iteration), in seconds, split by the
/// training phases the paper distinguishes (§5.3.1): forward/backward compute,
/// weight-update compute, gradient-exchange Allreduce (GE), layer-wise
/// collectives in the forward/backward passes (FB-Allgather / FB-Allreduce),
/// halo exchange (FB-Halo) and pipeline stage-to-stage P2P (FB-layer).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseBreakdown {
    /// Forward + backward computation time.
    pub forward_backward: f64,
    /// Weight-update computation time.
    pub weight_update: f64,
    /// Gradient-exchange Allreduce time (data/spatial/hybrid).
    pub gradient_exchange: f64,
    /// Layer-wise collective communication (filter/channel/hybrid FB phase).
    pub fb_collective: f64,
    /// Halo-exchange communication (spatial).
    pub halo_exchange: f64,
    /// Pipeline activation/gradient P2P communication.
    pub pipeline_p2p: f64,
}

impl PhaseBreakdown {
    /// Total computation time.
    pub fn compute(&self) -> f64 {
        self.forward_backward + self.weight_update
    }

    /// Total communication time.
    pub fn communication(&self) -> f64 {
        self.gradient_exchange + self.fb_collective + self.halo_exchange + self.pipeline_p2p
    }

    /// Total time (compute + communication; the oracle assumes no overlap,
    /// matching the paper's projection).
    pub fn total(&self) -> f64 {
        self.compute() + self.communication()
    }

    /// Scales every component by a factor (e.g. epoch → iteration).
    pub fn scaled(&self, factor: f64) -> PhaseBreakdown {
        PhaseBreakdown {
            forward_backward: self.forward_backward * factor,
            weight_update: self.weight_update * factor,
            gradient_exchange: self.gradient_exchange * factor,
            fb_collective: self.fb_collective * factor,
            halo_exchange: self.halo_exchange * factor,
            pipeline_p2p: self.pipeline_p2p * factor,
        }
    }

    /// Element-wise sum of two breakdowns.
    pub fn add(&self, other: &PhaseBreakdown) -> PhaseBreakdown {
        PhaseBreakdown {
            forward_backward: self.forward_backward + other.forward_backward,
            weight_update: self.weight_update + other.weight_update,
            gradient_exchange: self.gradient_exchange + other.gradient_exchange,
            fb_collective: self.fb_collective + other.fb_collective,
            halo_exchange: self.halo_exchange + other.halo_exchange,
            pipeline_p2p: self.pipeline_p2p + other.pipeline_p2p,
        }
    }
}

/// Full cost estimate produced by the oracle for one (model, strategy,
/// system, configuration) combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// The strategy that was evaluated.
    pub strategy: Strategy,
    /// Per-epoch time breakdown.
    pub per_epoch: PhaseBreakdown,
    /// Number of iterations per epoch `I = D/B`.
    pub iterations: usize,
    /// Maximum memory required on any single PE, in bytes.
    pub memory_per_pe_bytes: f64,
}

impl CostEstimate {
    /// Per-iteration breakdown (`per_epoch / I`).
    pub fn per_iteration(&self) -> PhaseBreakdown {
        self.per_epoch.scaled(1.0 / self.iterations.max(1) as f64)
    }

    /// Per-epoch total time.
    pub fn epoch_time(&self) -> f64 {
        self.per_epoch.total()
    }

    /// Per-iteration total time.
    pub fn iteration_time(&self) -> f64 {
        self.per_iteration().total()
    }
}

/// Per-layer compute aggregates used by several strategies.
struct ComputeSums {
    fw_bw_per_sample: f64,
    wu_per_iteration: f64,
}

fn compute_sums<C: ComputeModel + ?Sized>(model: &Model, device: &C) -> ComputeSums {
    let fw_bw_per_sample: f64 =
        model.layers.iter().map(|l| device.forward_time(l) + device.backward_time(l)).sum();
    let wu_per_iteration: f64 = model.layers.iter().map(|l| device.weight_update_time(l)).sum();
    ComputeSums { fw_bw_per_sample, wu_per_iteration }
}

/// Evaluates the analytical cost model for `strategy`.
///
/// `config.batch_size` is the *global* mini-batch `B`; under weak scaling the
/// caller is expected to have already scaled it with the PE count.
pub fn estimate<C: ComputeModel + ?Sized>(
    model: &Model,
    device: &C,
    cluster: &ClusterSpec,
    config: &TrainingConfig,
    strategy: Strategy,
) -> CostEstimate {
    let memory_per_pe_bytes = memory::memory_per_pe(model, config, strategy);
    estimate_with_memory(model, device, cluster, config, strategy, memory_per_pe_bytes)
}

/// Like [`estimate`], but reuses a per-PE memory value the caller already
/// computed. This per-layer walk is the *reference* implementation of the
/// cost model: the search hot path goes through the precomputed
/// [`crate::engine::CostEngine`] instead, and the engine's property tests
/// assert it reproduces this function for every strategy kind.
pub fn estimate_with_memory<C: ComputeModel + ?Sized>(
    model: &Model,
    device: &C,
    cluster: &ClusterSpec,
    config: &TrainingConfig,
    strategy: Strategy,
    memory_per_pe_bytes: f64,
) -> CostEstimate {
    let d = config.dataset_size as f64;
    let b = config.batch_size as f64;
    let iters = config.iterations_per_epoch() as f64;
    let delta = config.bytes_per_item;
    let sums = compute_sums(model, device);
    let total_weight_bytes = model.total_weights() as f64 * delta;

    let mut breakdown = PhaseBreakdown::default();

    match strategy {
        Strategy::Serial => {
            breakdown.forward_backward = d * sums.fw_bw_per_sample;
            breakdown.weight_update = iters * sums.wu_per_iteration;
        }
        Strategy::Data { p } => {
            let pf = p as f64;
            breakdown.forward_backward = d / pf * sums.fw_bw_per_sample;
            breakdown.weight_update = iters * sums.wu_per_iteration;
            let comm = cluster.comm_model(p);
            breakdown.gradient_exchange = iters * comm.allreduce(p, total_weight_bytes);
        }
        Strategy::Spatial { split } => {
            let p = split.total();
            let pf = p as f64;
            breakdown.forward_backward = d / pf * sums.fw_bw_per_sample;
            breakdown.weight_update = iters * sums.wu_per_iteration;
            let comm = cluster.comm_model(p);
            breakdown.gradient_exchange = iters * comm.allreduce(p, total_weight_bytes);
            breakdown.halo_exchange = iters * halo_time(model, &comm, &split, b, delta);
        }
        Strategy::Filter { p } | Strategy::Channel { p } => {
            let pf = p as f64;
            breakdown.forward_backward = d / pf * sums.fw_bw_per_sample;
            breakdown.weight_update = iters / pf * sums.wu_per_iteration;
            let comm = cluster.comm_model(p);
            breakdown.fb_collective =
                iters * layerwise_collective_time(model, &comm, p, p, b, delta);
        }
        Strategy::Pipeline { p, segments } => {
            let groups = model.balanced_pipeline_groups(p);
            let s = segments.max(1) as f64;
            let pf = p as f64;
            // Per-group per-sample forward/backward times and per-iteration WU.
            let mut max_fw = 0f64;
            let mut max_bw = 0f64;
            let mut max_wu = 0f64;
            let mut boundary_act: Vec<f64> = Vec::new();
            for (gi, range) in groups.iter().enumerate() {
                let fw: f64 =
                    model.layers[range.clone()].iter().map(|l| device.forward_time(l)).sum();
                let bw: f64 =
                    model.layers[range.clone()].iter().map(|l| device.backward_time(l)).sum();
                let wu: f64 =
                    model.layers[range.clone()].iter().map(|l| device.weight_update_time(l)).sum();
                max_fw = max_fw.max(fw);
                max_bw = max_bw.max(bw);
                max_wu = max_wu.max(wu);
                if gi + 1 < groups.len() {
                    let last = range.end - 1;
                    boundary_act.push(model.layers[last].output_size() as f64);
                }
            }
            breakdown.forward_backward = d * (pf + s - 1.0) / s * (max_fw + max_bw);
            breakdown.weight_update = iters * max_wu;
            // P2P communication: 2·D(p+S−2)/B · max(α + (B/S)|y_Gi|δβ).
            let comm = cluster.comm_model(p.min(cluster.gpus_per_node.max(2)));
            let max_p2p =
                boundary_act.iter().map(|&a| comm.p2p(b / s * a * delta)).fold(0.0f64, f64::max);
            if p > 1 {
                breakdown.pipeline_p2p = 2.0 * d * (pf + s - 2.0) / b * max_p2p;
            }
        }
        Strategy::DataFilter { p1, p2 } => {
            let p = (p1 * p2) as f64;
            breakdown.forward_backward = d / p * sums.fw_bw_per_sample;
            breakdown.weight_update = iters / p2 as f64 * sums.wu_per_iteration;
            // Intra-group layer-wise collectives over p2 PEs; the activation
            // buffer per group is B/p1 samples, so per-PE share is B|y_l|/p.
            let intra = cluster.comm_model(p2.min(cluster.gpus_per_node));
            breakdown.fb_collective =
                iters * layerwise_collective_time(model, &intra, p2, p1 * p2, b, delta);
            // Inter-group gradient exchange on the weight shard |w|/p2, with
            // the contention coefficient φ = number of concurrent segmented
            // Allreduces sharing the inter-node link (paper §5.2 uses φ = 2).
            let inter = cluster
                .comm_model_inter_group(p1, p2)
                .with_contention(segmented_allreduce_contention(cluster, p2));
            breakdown.gradient_exchange =
                iters * inter.allreduce(p1, total_weight_bytes / p2 as f64);
        }
        Strategy::DataSpatial { p1, split } => {
            let p2 = split.total();
            let p = (p1 * p2) as f64;
            breakdown.forward_backward = d / p * sums.fw_bw_per_sample;
            breakdown.weight_update = iters * sums.wu_per_iteration;
            // Halo exchange within each spatial group on the group micro-batch
            // B/p1.
            let intra = cluster.comm_model(p2.min(cluster.gpus_per_node));
            breakdown.halo_exchange =
                iters * halo_time(model, &intra, &split, b / p1 as f64, delta);
            // Hierarchical gradient exchange: local reduce to a leader, global
            // Allreduce among the p1 leaders, local broadcast (§4.5.1 / §5.3.1).
            let inter = cluster.comm_model_inter_group(p1, p2);
            breakdown.gradient_exchange =
                iters * hierarchical_allreduce_time(&intra, &inter, p2, p1, total_weight_bytes);
        }
    }

    CostEstimate {
        strategy,
        per_epoch: breakdown,
        iterations: config.iterations_per_epoch(),
        memory_per_pe_bytes,
    }
}

/// Halo-exchange time for one iteration (paper Eq. 10):
/// `Σ_l (2α + B(halo(x_l) + halo(dL/dy_l))·δ·β)`, doubled for the forward and
/// backward passes.
fn halo_time(model: &Model, comm: &CommModel, split: &SpatialSplit, batch: f64, delta: f64) -> f64 {
    let mut t = 0.0;
    for l in &model.layers {
        let factors = split.factors(l.spatial_dims());
        let halo_x = l.halo_size(&factors) as f64;
        if halo_x == 0.0 {
            continue;
        }
        // halo(dL/dy) has the same order as halo(x) for stride-1 convolutions;
        // we use the output-side halo computed on the activation shape.
        let halo_dy = halo_x * (l.output_size() as f64 / l.input_size().max(1) as f64);
        t += 2.0 * comm.p2p(0.0) + batch * (halo_x + halo_dy) * delta * comm.link.beta;
    }
    2.0 * t
}

/// Layer-wise collective time of filter/channel parallelism for one iteration
/// (paper Eq. 15/19): `3(p−1) Σ_{l<G} (α + B|y_l|/p_total·δ·β)`.
///
/// `p` is the size of the collective communicator; `p_total` is the divisor of
/// the per-PE activation share (equal to `p` for pure filter/channel, and to
/// `p1·p2` for the hybrid where the batch is also split).
fn layerwise_collective_time(
    model: &Model,
    comm: &CommModel,
    p: usize,
    p_total: usize,
    batch: f64,
    delta: f64,
) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    let pf = p as f64;
    let mut t = 0.0;
    let g = model.layers.len();
    for (i, l) in model.layers.iter().enumerate() {
        if i + 1 == g {
            // No Allgather after the last layer (paper footnote 7).
            continue;
        }
        let act_bytes = batch * l.output_size() as f64 / p_total as f64 * delta;
        t += 3.0 * (pf - 1.0) * (comm.link.alpha + act_bytes * comm.link.beta * comm.contention);
    }
    t
}

/// Hierarchical (leader-based) Allreduce used by the Data+Spatial hybrid:
/// local reduce to one leader per group, ring Allreduce among the `groups`
/// leaders, then local broadcast. The paper observes this costs more than 2×
/// a flat data-parallel Allreduce (§5.3.1).
pub fn hierarchical_allreduce_time(
    intra: &CommModel,
    inter: &CommModel,
    group_size: usize,
    groups: usize,
    bytes: f64,
) -> f64 {
    let mut t = 0.0;
    if group_size > 1 {
        // Flat reduce to the leader: each non-leader sends the full buffer.
        t += (group_size as f64 - 1.0) * intra.p2p(bytes) * 0.5
            + intra.reduce_scatter(group_size, bytes);
        // Local broadcast of the updated gradients back to the group.
        t += intra.broadcast(group_size, bytes);
    }
    if groups > 1 {
        t += inter.allreduce(groups, bytes);
    }
    t
}

/// Contention coefficient φ of the segmented Allreduce used by Data+Filter
/// (paper §5.2). Forwards to
/// [`ClusterSpec::segmented_allreduce_contention`], where the
/// topology-derived quantity now lives so the per-cluster
/// [`crate::cluster::ClusterCache`] can tabulate it.
pub fn segmented_allreduce_contention(cluster: &ClusterSpec, group_size: usize) -> f64 {
    cluster.segmented_allreduce_contention(group_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::DeviceProfile;
    use crate::layer::Layer;
    use crate::strategy::StrategyKind;

    fn model() -> Model {
        Model::new(
            "m",
            3,
            vec![32, 32],
            vec![
                Layer::conv2d("c1", 3, 16, (32, 32), 3, 1, 1),
                Layer::relu("r1", 16, &[32, 32]),
                Layer::pool2d("p1", 16, (32, 32), 2, 2),
                Layer::conv2d("c2", 16, 32, (16, 16), 3, 1, 1),
                Layer::relu("r2", 32, &[16, 16]),
                Layer::global_pool("g", 32, &[16, 16]),
                Layer::fully_connected("fc", 32, 10),
            ],
        )
    }

    fn setup() -> (Model, DeviceProfile, ClusterSpec, TrainingConfig) {
        (
            model(),
            DeviceProfile::v100(),
            ClusterSpec::paper_system(),
            TrainingConfig::small(4096, 64),
        )
    }

    #[test]
    fn serial_has_no_communication() {
        let (m, d, c, cfg) = setup();
        let e = estimate(&m, &d, &c, &cfg, Strategy::Serial);
        assert_eq!(e.per_epoch.communication(), 0.0);
        assert!(e.per_epoch.compute() > 0.0);
    }

    #[test]
    fn data_parallelism_divides_compute_by_p() {
        let (m, d, c, cfg) = setup();
        let serial = estimate(&m, &d, &c, &cfg, Strategy::Serial);
        let data = estimate(&m, &d, &c, &cfg, Strategy::Data { p: 8 });
        let ratio = serial.per_epoch.forward_backward / data.per_epoch.forward_backward;
        assert!((ratio - 8.0).abs() < 1e-9);
        // Weight update is replicated, not divided.
        assert!((serial.per_epoch.weight_update - data.per_epoch.weight_update).abs() < 1e-12);
        assert!(data.per_epoch.gradient_exchange > 0.0);
    }

    #[test]
    fn data_at_p1_equals_serial_compute() {
        let (m, d, c, cfg) = setup();
        let serial = estimate(&m, &d, &c, &cfg, Strategy::Serial);
        let data1 = estimate(&m, &d, &c, &cfg, Strategy::Data { p: 1 });
        assert!((serial.per_epoch.total() - data1.per_epoch.total()).abs() < 1e-9);
    }

    #[test]
    fn gradient_exchange_matches_ring_formula() {
        let (m, d, c, cfg) = setup();
        let p = 16;
        let e = estimate(&m, &d, &c, &cfg, Strategy::Data { p });
        let comm = c.comm_model(p);
        let bytes = m.total_weights() as f64 * cfg.bytes_per_item;
        let expected = cfg.iterations_per_epoch() as f64 * comm.allreduce(p, bytes);
        assert!((e.per_epoch.gradient_exchange - expected).abs() < 1e-9);
    }

    #[test]
    fn filter_divides_weight_update_too() {
        let (m, d, c, cfg) = setup();
        let serial = estimate(&m, &d, &c, &cfg, Strategy::Serial);
        let filt = estimate(&m, &d, &c, &cfg, Strategy::Filter { p: 8 });
        assert!(filt.per_epoch.weight_update < serial.per_epoch.weight_update);
        assert!(filt.per_epoch.fb_collective > 0.0);
        assert_eq!(filt.per_epoch.gradient_exchange, 0.0);
    }

    #[test]
    fn channel_and_filter_have_equal_analytic_cost() {
        let (m, d, c, cfg) = setup();
        let f = estimate(&m, &d, &c, &cfg, Strategy::Filter { p: 8 });
        let ch = estimate(&m, &d, &c, &cfg, Strategy::Channel { p: 8 });
        assert!((f.per_epoch.total() - ch.per_epoch.total()).abs() < 1e-12);
    }

    #[test]
    fn spatial_has_halo_and_gradient_exchange() {
        let (m, d, c, cfg) = setup();
        let s =
            estimate(&m, &d, &c, &cfg, Strategy::Spatial { split: SpatialSplit::balanced_2d(4) });
        assert!(s.per_epoch.halo_exchange > 0.0);
        assert!(s.per_epoch.gradient_exchange > 0.0);
        assert_eq!(s.per_epoch.fb_collective, 0.0);
    }

    #[test]
    fn pipeline_bubble_shrinks_with_more_segments() {
        let (m, d, c, cfg) = setup();
        let few = estimate(&m, &d, &c, &cfg, Strategy::Pipeline { p: 4, segments: 1 });
        let many = estimate(&m, &d, &c, &cfg, Strategy::Pipeline { p: 4, segments: 16 });
        assert!(many.per_epoch.forward_backward < few.per_epoch.forward_backward);
    }

    #[test]
    fn hybrid_df_has_both_comm_kinds() {
        let (m, d, c, cfg) = setup();
        let e = estimate(&m, &d, &c, &cfg, Strategy::DataFilter { p1: 4, p2: 4 });
        assert!(e.per_epoch.fb_collective > 0.0);
        assert!(e.per_epoch.gradient_exchange > 0.0);
        // Compute divided by p = 16.
        let serial = estimate(&m, &d, &c, &cfg, Strategy::Serial);
        let ratio = serial.per_epoch.forward_backward / e.per_epoch.forward_backward;
        assert!((ratio - 16.0).abs() < 1e-9);
    }

    #[test]
    fn hybrid_ds_hierarchical_allreduce_costs_more_than_flat() {
        // Use a model with a large weight buffer so the Allreduce is
        // bandwidth-dominated (the regime where the paper observes the >2×
        // overhead of the hierarchical scheme).
        let m = Model::new(
            "big-weights",
            3,
            vec![32, 32],
            vec![
                Layer::conv2d("c1", 3, 64, (32, 32), 3, 1, 1),
                Layer::global_pool("g", 64, &[32, 32]),
                Layer::fully_connected("fc1", 64, 4096),
                Layer::fully_connected("fc2", 4096, 4096),
            ],
        );
        let d = DeviceProfile::v100();
        let c = ClusterSpec::paper_system();
        let cfg = TrainingConfig::small(4096, 64);
        let p = 16;
        let ds = estimate(
            &m,
            &d,
            &c,
            &cfg,
            Strategy::DataSpatial { p1: p / 4, split: SpatialSplit::balanced_2d(4) },
        );
        let data = estimate(&m, &d, &c, &cfg, Strategy::Data { p });
        assert!(ds.per_epoch.gradient_exchange > data.per_epoch.gradient_exchange);
    }

    #[test]
    fn per_iteration_scales_by_iteration_count() {
        let (m, d, c, cfg) = setup();
        let e = estimate(&m, &d, &c, &cfg, Strategy::Data { p: 8 });
        let per_iter = e.per_iteration();
        assert!((per_iter.total() * e.iterations as f64 - e.per_epoch.total()).abs() < 1e-9);
    }

    #[test]
    fn all_strategies_produce_finite_positive_times() {
        let (m, d, c, cfg) = setup();
        let strategies = [
            Strategy::Serial,
            Strategy::Data { p: 8 },
            Strategy::Spatial { split: SpatialSplit::balanced_2d(4) },
            Strategy::Filter { p: 8 },
            Strategy::Channel { p: 8 },
            Strategy::Pipeline { p: 4, segments: 8 },
            Strategy::DataFilter { p1: 4, p2: 4 },
            Strategy::DataSpatial { p1: 4, split: SpatialSplit::balanced_2d(4) },
        ];
        for s in strategies {
            let e = estimate(&m, &d, &c, &cfg, s);
            assert!(e.per_epoch.total().is_finite(), "{s}");
            assert!(e.per_epoch.total() > 0.0, "{s}");
            assert!(e.memory_per_pe_bytes > 0.0, "{s}");
        }
        let _ = StrategyKind::ALL;
    }
}
