//! The analytic candidate-evaluation kernel: static dominance bounds,
//! branchless feasibility masking and incremental cost deltas over the
//! structure-of-arrays prep columns.
//!
//! This is the hot loop behind every ranked query — [`crate::search`]'s
//! `Oracle::search`, the chunked cells of [`crate::grid::GridSweep`], and
//! (through the daemon's coalesced grids) every `paradl-serve` answer. It
//! replaces the *mechanical* evaluation — one full
//! [`CostEngine::estimate_with_memory`] walk per candidate, with dynamic
//! branch-and-bound checks branching per candidate — with an *analytic*
//! pipeline in three layers:
//!
//! 1. **Static dominance bounds** ([`StaticBounds`]). Before any candidate
//!    is costed, a tiny seed panel — the per-(strategy family, PE-budget
//!    slot) compute-lower-bound minima, at most `8 × budget slots`
//!    candidates — is fully costed. The k-th best seed time `T` is an upper
//!    bound on the final k-th best overall, and the running per-slot minimum
//!    `R[s]` bounds every budget winner at slots `≤ s`, so any candidate
//!    whose epoch time — exact when the grid's comm-coefficient columns are
//!    available, its compute-only lower bound otherwise — exceeds `max(T,
//!    R[slot])` provably ends up outside both the top-k and every budget
//!    slot it could win. The bound is fixed before the scan starts, so the
//!    pruned *set* — and the `pruned_by_dominance` counter — is
//!    deterministic, unlike the dynamic `pruned_by_bound` counter of the
//!    streaming search.
//! 2. **Branchless fused evaluation** ([`eval_chunk_kernel`]). Candidates
//!    arrive in sorted-superset order (family-major, so the per-family
//!    coefficient dispatch is branch-predicted within runs, and equal
//!    PE-budget slots form runs whose bound is hoisted). One pass per chunk
//!    reconstructs each feasible candidate's *exact* epoch time from the
//!    batch-invariant coefficient row (`lb + comm_time_prepped`,
//!    bit-identical to the full estimate's epoch time) and compacts the
//!    indices and times that beat both the static bound and a stale
//!    snapshot of the shared top-k/budget thresholds — branch-free, one
//!    conditional-increment store per candidate. Only that survivor list is
//!    walked again, and the full [`crate::cost::CostEstimate`] is assembled
//!    only for the rare candidate that improves a budget slot or enters the
//!    top-k heap.
//! 3. **Incremental cost deltas** (full-ranking mode). Lexicographically
//!    adjacent candidates differ in one axis, so
//!    [`CostEngine::estimate_delta_with_memory`] chains each candidate off
//!    its predecessor, copying the phase terms the axis change provably
//!    leaves bit-identical (see the `engine` module docs for which tables
//!    the delta path may reuse) instead of recomputing them.
//!
//! The kernel is *exact*: ranked output, budget winners and the
//! `enumerated`/`pruned_by_memory` accounting are identical to
//! `Oracle::search_streaming` (property-tested in
//! `tests/proptest_search.rs` and `tests/proptest_grid.rs`); static
//! pruning is sound because every pruned candidate is strictly dominated
//! by a surviving one at every admissible PE budget. The chunk granularity
//! is tunable through [`GridSweep::with_chunk`](crate::grid::GridSweep)
//! and the `PARADL_CHUNK` environment variable; the default is picked by
//! the chunk sweep recorded in `BENCH_kernel.json`.

use crate::cost::CostEstimate;
use crate::engine::{CommCoef, CostEngine};
use crate::oracle::{Constraints, Projection};
use crate::search::{
    budget_index, candidate_cmp, finish_report, finish_report_topk, strategy_sort_key,
    RankedCandidate, SearchReport, SearchShared, StrategySpace,
};
use crate::strategy::Strategy;
use rayon::prelude::*;
use std::cell::RefCell;
use std::sync::Mutex;

/// Default candidates-per-chunk granularity of the interleaved evaluation:
/// small enough that a paper-scale query splits into dozens of units, large
/// enough that chunk dispatch cost is negligible and the mask pass stays in
/// cache. Chosen by the chunk sweep in `bench_kernel_summary` (recorded in
/// `BENCH_kernel.json`).
pub(crate) const DEFAULT_CHUNK: usize = 8192;

/// The evaluation chunk size: `PARADL_CHUNK` when set to a positive
/// integer, [`DEFAULT_CHUNK`] otherwise.
pub(crate) fn chunk_from_env() -> usize {
    std::env::var("PARADL_CHUNK")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&c| c > 0)
        .unwrap_or(DEFAULT_CHUNK)
}

/// Number of strategy families distinguished by the seed panel — the first
/// component of [`strategy_sort_key`] (Serial, Data, Spatial, Filter,
/// Channel, Pipeline, DataFilter, DataSpatial).
const FAMILIES: usize = 8;

/// Selects the seed panel: for every (strategy family, PE-budget slot)
/// pair, the index of the memory-feasible candidate with the smallest
/// compute-only lower bound. Deterministic (forward scan, strict-improvement
/// updates, so ties keep the first candidate in enumeration order) and
/// cluster-independent — the lower-bound column only depends on the device,
/// so the grid sweep selects seeds once per (model, batch, device) prep.
pub(crate) fn select_seeds(
    cands: &[Strategy],
    lbs: &[f64],
    slots: &[u8],
    n_slots: usize,
) -> Vec<usize> {
    let mut best: Vec<Option<usize>> = vec![None; FAMILIES * n_slots];
    for (i, s) in cands.iter().enumerate() {
        let fam = strategy_sort_key(s).0 as usize;
        let key = fam * n_slots + slots[i] as usize;
        let better = match best[key] {
            Some(j) => lbs[i] < lbs[j],
            None => true,
        };
        if better {
            best[key] = Some(i);
        }
    }
    let mut seeds: Vec<usize> = best.into_iter().flatten().collect();
    seeds.sort_unstable();
    seeds
}

/// Per-budget-slot static prune bounds, fixed before the evaluation scan:
/// a candidate at slot `s` whose epoch time — reconstructed exactly from
/// the comm-coefficient columns when present, its compute-only lower bound
/// otherwise (which never exceeds the true epoch time) — exceeds
/// `bound[s]` is provably outside the final top-k *and* every budget slot
/// it is admissible for, so it is discarded without building an estimate.
///
/// `bound[s] = max(T, R[s])` where `T` is the k-th smallest fully-costed
/// seed time (`+∞` when fewer than `k` seeds exist, `−∞` when `k == 0`)
/// and `R[s]` is the running minimum of the per-slot best seed times over
/// slots `≤ s`. Soundness: a pruned candidate's epoch time is at least its
/// lower bound, hence strictly above `T` (it cannot displace the k seeds
/// already at or below `T`) and strictly above some surviving candidate's
/// time at a slot `≤ s` (which [`finish_report_topk`]'s running minimum
/// offers to every budget the pruned candidate is admissible for). In
/// full-ranking mode every bound is `+∞` — nothing may be dropped.
pub(crate) struct StaticBounds {
    /// Prune threshold per PE-budget slot.
    pub(crate) bound: Vec<f64>,
}

impl StaticBounds {
    /// Costs the seed panel and derives the per-slot bounds, pre-tightening
    /// `shared`'s top-k threshold and per-budget best times with the seed
    /// results (sound: seeds are real candidates, re-offered during the
    /// scan, so priming never changes the final report).
    pub(crate) fn from_seeds(
        engine: &CostEngine<'_>,
        cands: &[Strategy],
        lbs: &[f64],
        slots: &[u8],
        seeds: &[usize],
        shared: &SearchShared,
    ) -> StaticBounds {
        let n_slots = shared.num_budget_slots();
        let Some(k) = shared.top_k() else {
            return StaticBounds { bound: vec![f64::INFINITY; n_slots] };
        };
        let mut slot_u = vec![f64::INFINITY; n_slots];
        let mut times: Vec<f64> = Vec::with_capacity(seeds.len());
        for &i in seeds {
            let t = lbs[i] + engine.comm_time(cands[i]);
            times.push(t);
            let s = slots[i] as usize;
            if t < slot_u[s] {
                slot_u[s] = t;
            }
        }
        let t_k = if k == 0 {
            f64::NEG_INFINITY
        } else if times.len() >= k {
            times.sort_unstable_by(|a, b| a.total_cmp(b));
            let t = times[k - 1];
            shared.prime_threshold(t);
            t
        } else {
            f64::INFINITY
        };
        let mut bound = vec![f64::INFINITY; n_slots];
        let mut running = f64::INFINITY;
        for (s, &u) in slot_u.iter().enumerate() {
            if u.is_finite() {
                shared.record_budget(s, u);
            }
            running = running.min(u);
            bound[s] = t_k.max(running);
        }
        StaticBounds { bound }
    }
}

/// Per-worker reusable buffers — the compacted survivor-index lane and the
/// full-ranking survivor batch — retaining capacity across chunks so the
/// hot path never allocates.
#[derive(Default)]
struct KernelScratch {
    /// Branchless survivor compaction: the evaluation pass writes each row
    /// index unconditionally and bumps the length by the keep bit, so the
    /// finishing pass walks exactly the survivors instead of re-scanning a
    /// mask lane over the whole chunk.
    surv: Vec<u32>,
    /// Exact epoch times aligned with `surv` (prepped columns only), so
    /// the finishing pass never recomputes communication.
    tims: Vec<f64>,
    found: Vec<RankedCandidate>,
    /// Stale per-slot budget-best snapshot, refreshed once per chunk (the
    /// shared values only decrease, so a stale bound is conservative).
    bud: Vec<f64>,
}

thread_local! {
    static SCRATCH: RefCell<KernelScratch> = RefCell::new(KernelScratch::default());
}

/// The structure-of-arrays candidate columns one [`eval_chunk_kernel`] call
/// scans: the caller's prep columns plus (grid sweeps only) the
/// superset-aligned communication-coefficient column of the cell's
/// (model, cluster) pair, from which the fused evaluation pass
/// reconstructs every candidate's exact communication time
/// ([`CostEngine::comm_time_prepped`], dispatched on the `fams` byte).
/// `sup`/`fams`/`coef` may be empty — the per-query path has no
/// cross-batch reuse to exploit and falls back to a compute-only mask
/// with [`CostEngine::comm_time`] on survivors.
pub(crate) struct KernelColumns<'c> {
    pub(crate) cands: &'c [Strategy],
    pub(crate) mems: &'c [f64],
    pub(crate) lbs: &'c [f64],
    pub(crate) slots: &'c [u8],
    pub(crate) sup: &'c [u32],
    pub(crate) fams: &'c [u8],
    pub(crate) coef: &'c [CommCoef],
}

/// Evaluates one candidate chunk through the analytic kernel. The
/// structure-of-arrays columns come from the caller's prep pass; `bounds`
/// is the chunk-invariant static prune table.
/// Top-k mode runs the fused evaluation pass: per slot run it hoists the
/// static bound, computes each candidate's exact epoch time from the
/// coefficient columns (compute-only lower bound on the per-query path),
/// bulk-counts the static-bound prunes, and branch-free-compacts the
/// indices and times beating the stale dynamic threshold snapshot into the
/// survivor list; the finishing pass re-checks survivors against the fresh
/// shared gates and assembles a full estimate only for candidates that
/// improve a budget slot or the heap.
/// Full-ranking mode costs every candidate through the incremental delta
/// chain and appends to `found` once per chunk. The shared-state
/// transitions match the streaming search's exactly, so any interleaving
/// of chunks produces the same final report.
#[allow(clippy::too_many_arguments)]
pub(crate) fn eval_chunk_kernel(
    engine: &CostEngine<'_>,
    cols: KernelColumns<'_>,
    bounds: &StaticBounds,
    lo: usize,
    hi: usize,
    constraints: &Constraints,
    shared: &SearchShared,
    winners: &[Mutex<Option<RankedCandidate>>],
    found: &Mutex<Vec<RankedCandidate>>,
) {
    let KernelColumns { cands, mems, lbs, slots, sup, fams, coef } = cols;
    let prepped = !coef.is_empty();
    if constraints.top_k.is_some() {
        SCRATCH.with(|tls| {
            let scratch = &mut *tls.borrow_mut();
            let surv = &mut scratch.surv;
            surv.clear();
            surv.resize(hi - lo, 0);
            let tims = &mut scratch.tims;
            tims.clear();
            tims.resize(hi - lo, 0.0);
            // Stale snapshots of the shared prune state, refreshed once per
            // chunk: both the threshold and the per-slot budget bests only
            // ever decrease, so a value above a snapshot is above the fresh
            // one too — the evaluation and finishing passes gate on two
            // local compares instead of two cross-thread atomic loads, and
            // a candidate passing the stale gate re-checks fresh values.
            let thr_stale = shared.threshold_time();
            let bud_stale = &mut scratch.bud;
            bud_stale.clear();
            bud_stale.extend((0..bounds.bound.len()).map(|s| shared.budget_best_time(s)));
            // Fused evaluation pass. Candidates arrive in sorted-superset
            // order — family-major (the sort key leads with the family
            // byte), budget slots non-decreasing within a family — so equal
            // slots form runs: hoist the bounds per run and compact the
            // surviving row indices branch-free (unconditional index/time
            // store, length bumped by the keep bit); the family dispatch
            // inside `comm_time_prepped` is perfectly predicted within a
            // run. With comm columns the pass computes each candidate's
            // *exact* epoch time — the coefficient-reconstructed
            // communication time costs barely more than a lower bound and
            // kills the separate floor column, the second gather, and the
            // survivor-side recomputation outright. The static cut
            // (`time ≤ bound`, counted as dominance-pruned) is deterministic:
            // the bound is fixed before the scan and the time is exact,
            // and a candidate above it is provably outside the top-k and
            // every budget slot it is admissible for (the [`StaticBounds`]
            // argument, a fortiori from the lower bound to the time
            // itself). Without comm columns the pass degrades to the
            // compute-only lower bound and survivors pay `comm_time`.
            //
            // The pass folds in a second, *dynamic* cut at the same cost:
            // a time above both stale snapshots can neither improve its
            // budget slot nor enter the top-k (the shared values only
            // decrease), exactly the skip the finishing pass's gate would
            // take. Only the static cut is counted as dominance-pruned —
            // the dynamic cut depends on scan order, so folding it into
            // the counter would break the counter's determinism.
            let mut i = lo;
            let mut n = 0usize;
            let mut pruned = 0usize;
            while i < hi {
                let slot = slots[i];
                let mut j = i;
                while j < hi && slots[j] == slot {
                    j += 1;
                }
                let b = bounds.bound[slot as usize];
                let dyn_b = bud_stale[slot as usize].max(thr_stale).min(b);
                let mut kept = 0usize;
                if prepped {
                    for x in i..j {
                        let time = lbs[x]
                            + engine
                                .comm_time_prepped(fams[x], &coef[sup[x] as usize], || cands[x]);
                        kept += (time <= b) as usize;
                        surv[n] = x as u32;
                        tims[n] = time;
                        n += (time <= dyn_b) as usize;
                    }
                } else {
                    for (off, &lb) in lbs[i..j].iter().enumerate() {
                        kept += (lb <= b) as usize;
                        surv[n] = (i + off) as u32;
                        n += (lb <= dyn_b) as usize;
                    }
                }
                pruned += (j - i) - kept;
                i = j;
            }
            if pruned > 0 {
                shared.count_dominance_pruned(pruned);
            }
            // Finishing pass over survivors. The scalar time is
            // bit-identical to `estimate_with_memory(..).epoch_time()` (the
            // lower bound *is* the compute sum and `total()` adds
            // communication last), so the improves/threshold decisions
            // match the streaming search's; the full estimate is assembled
            // only when needed.
            for (pos, &xu) in surv[..n].iter().enumerate() {
                let x = xu as usize;
                let idx = slots[x] as usize;
                let time = if prepped { tims[pos] } else { lbs[x] + engine.comm_time(cands[x]) };
                if time > bud_stale[idx] && time > thr_stale {
                    continue;
                }
                let improves_budget = time <= shared.budget_best_time(idx);
                if !improves_budget && time > shared.threshold_time() {
                    continue;
                }
                // Lazy estimate assembly: the budget-winner and top-k
                // decisions both order by (epoch time, strategy sort key)
                // alone — `candidate_cmp` and the heap's `HeapEntry` agree
                // on that — so the full estimate is built only when this
                // candidate actually displaces a winner slot or enters the
                // heap, not for every gate survivor.
                let strategy = cands[x];
                let build = || {
                    let cost = engine.estimate_with_memory(strategy, mems[x]);
                    debug_assert_eq!(
                        time.to_bits(),
                        cost.epoch_time().to_bits(),
                        "scalar kernel time diverged from the full estimate for {strategy}",
                    );
                    RankedCandidate {
                        strategy,
                        projection: Projection {
                            cost,
                            fits_memory: true,
                            within_scaling_limit: true,
                        },
                    }
                };
                if improves_budget {
                    shared.record_budget(idx, time);
                    bud_stale[idx] = bud_stale[idx].min(time);
                    let mut slot = winners[idx].lock().expect("winner slot poisoned");
                    let better = slot
                        .map(|cur| {
                            (time.to_bits(), strategy_sort_key(&strategy))
                                < (cur.epoch_time().to_bits(), strategy_sort_key(&cur.strategy))
                        })
                        .unwrap_or(true);
                    if better {
                        let c = build();
                        debug_assert!(slot
                            .map(|cur| candidate_cmp(&c, &cur) == std::cmp::Ordering::Less)
                            .unwrap_or(true));
                        *slot = Some(c);
                        drop(slot);
                        shared.offer_topk(&c);
                    } else {
                        drop(slot);
                        shared.offer_topk_lazy(time, &strategy, build);
                    }
                } else {
                    shared.offer_topk_lazy(time, &strategy, build);
                }
            }
        });
        return;
    }
    // Full-ranking mode: every memory-feasible candidate is a survivor
    // (no bound may drop anything), so the work is pure costing — chain
    // each candidate off its predecessor through the incremental delta
    // path, and batch survivors through the per-worker scratch to keep
    // lock traffic at one append per chunk.
    SCRATCH.with(|tls| {
        let scratch = &mut *tls.borrow_mut();
        scratch.found.clear();
        let mut prev: Option<CostEstimate> = None;
        for x in lo..hi {
            let strategy = cands[x];
            let cost = match prev.as_ref() {
                Some(p) => engine.estimate_delta_with_memory(p, strategy, mems[x]),
                None => engine.estimate_with_memory(strategy, mems[x]),
            };
            prev = Some(cost);
            scratch.found.push(RankedCandidate {
                strategy,
                projection: Projection { cost, fits_memory: true, within_scaling_limit: true },
            });
        }
        if !scratch.found.is_empty() {
            found.lock().expect("kernel survivor accumulator poisoned").append(&mut scratch.found);
        }
    });
}

/// One full analytic search: enumerate, prep the SoA columns (fused
/// memory + lower-bound pass, memory pruning), derive the static bounds
/// from the seed panel, evaluate in parallel chunks through
/// [`eval_chunk_kernel`], and assemble the report. Returns exactly what
/// `Oracle::search_streaming` returns for the same engine and constraints.
pub(crate) fn kernel_search(engine: &CostEngine<'_>, constraints: &Constraints) -> SearchReport {
    let candidates =
        StrategySpace::with_limits(engine.config().batch_size, constraints, engine.limits())
            .into_vec();
    let enumerated = candidates.len();
    let shared = SearchShared::new(constraints);
    let cap = constraints.memory_capacity_bytes;
    let mut cands = Vec::with_capacity(enumerated);
    let mut mems = Vec::with_capacity(enumerated);
    let mut lbs = Vec::with_capacity(enumerated);
    let mut slots = Vec::with_capacity(enumerated);
    for &strategy in &candidates {
        let (mem, lb) = engine.prep_terms(strategy);
        if mem > cap {
            continue;
        }
        cands.push(strategy);
        mems.push(mem);
        lbs.push(lb);
        slots.push(budget_index(strategy.total_pes()) as u8);
    }
    shared.set_memory_pruned(enumerated - cands.len());
    let seeds = select_seeds(&cands, &lbs, &slots, shared.num_budget_slots());
    let bounds = StaticBounds::from_seeds(engine, &cands, &lbs, &slots, &seeds, &shared);
    let winners: Vec<Mutex<Option<RankedCandidate>>> =
        (0..shared.num_budget_slots()).map(|_| Mutex::new(None)).collect();
    let found = Mutex::new(Vec::new());
    let chunk = chunk_from_env();
    let n_chunks = cands.len().div_ceil(chunk);
    let _: Vec<()> = (0..n_chunks)
        .into_par_iter()
        .map(|ci| {
            let lo = ci * chunk;
            let hi = (lo + chunk).min(cands.len());
            eval_chunk_kernel(
                engine,
                KernelColumns {
                    cands: &cands,
                    mems: &mems,
                    lbs: &lbs,
                    slots: &slots,
                    sup: &[],
                    fams: &[],
                    coef: &[],
                },
                &bounds,
                lo,
                hi,
                constraints,
                &shared,
                &winners,
                &found,
            );
        })
        .collect();
    if constraints.top_k.is_some() {
        let slot_best = winners
            .into_iter()
            .map(|slot| slot.into_inner().expect("winner slot poisoned"))
            .collect();
        finish_report_topk(enumerated, slot_best, constraints, shared)
    } else {
        let survivors = found.into_inner().expect("kernel survivor accumulator poisoned");
        finish_report(enumerated, survivors, constraints, shared)
    }
}
