//! The unified Query API: one request type for every way of asking the
//! oracle a question.
//!
//! Historically the oracle grew four overlapping entry points
//! (`search` / `search_with_engine` / `suggest_with_engine` /
//! `survey_with_engine`). [`Query`] collapses them into a single
//! builder-style value — model + config + cluster + [`Constraints`] +
//! [`QueryMode`] — that is simultaneously:
//!
//! * the **in-process API**: [`crate::oracle::Oracle::answer`] takes a
//!   `&Query` and returns a [`QueryAnswer`],
//! * the **wire-protocol request schema** of the `paradl-serve` daemon
//!   ([`Query::to_json`] / [`Query::from_json`] over [`crate::jsonio`]),
//! * the **serialization format** of benched/fixture answers
//!   ([`QueryAnswer::to_json`]).
//!
//! A standalone query (with model, config and cluster all set) can also be
//! answered directly with [`Query::run`], which builds the oracle for you.
//!
//! ## Determinism and the wire
//!
//! [`QueryAnswer::to_json`] is deterministic — same answer, same bytes —
//! with one deliberate omission: `SearchReport::pruned_by_bound` is a
//! documented order-dependent counter (it varies run to run under rayon),
//! so it is **excluded** from the serialization. That is what lets the
//! serve integration tests assert that a daemon response is byte-identical
//! to a locally computed `Oracle::answer` on the same query.

use crate::calibrate::Calibration;
use crate::cluster::ClusterSpec;
use crate::comm::LinkParams;
use crate::compute::DeviceProfile;
use crate::config::TrainingConfig;
use crate::jsonio::Json;
use crate::model::Model;
use crate::oracle::{Constraints, Oracle, PeSweep, Projection};
use crate::search::{RankedCandidate, SearchReport};

/// What kind of answer a [`Query`] asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryMode {
    /// The single best feasible strategy (powers-of-two sweep per family —
    /// the paper's §4.1 "suggest" role).
    #[default]
    Suggest,
    /// The `k` best candidates of the exhaustive search (bounded-heap
    /// ranking with branch-and-bound pruning).
    TopK(usize),
    /// Every feasible candidate of the exhaustive search, ranked.
    FullRank,
    /// One projection per evaluated strategy family at exactly this many
    /// PEs (infeasible projections included and flagged).
    Survey {
        /// The PE count to project every family at.
        pes: usize,
    },
}

/// A unified oracle query: the problem description (optional — an
/// [`Oracle`] already owns one) plus constraints and the answer mode.
///
/// The workload fields are `Option` so the same type serves two roles:
/// [`Oracle::answer`] ignores them (the oracle *is* the workload — only
/// `constraints` and `mode` matter), while the standalone [`Query::run`]
/// and the serve wire protocol require all three to be present.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    /// The CNN model to plan for (required by [`Query::run`] and the wire).
    pub model: Option<Model>,
    /// Training configuration `D`, `B`, `δ`, `γ`.
    pub config: Option<TrainingConfig>,
    /// The cluster to plan on; its `device` profile supplies compute times.
    pub cluster: Option<ClusterSpec>,
    /// Search constraints (PE budget, memory capacity, sweep mode, …).
    pub constraints: Constraints,
    /// What kind of answer to produce.
    pub mode: QueryMode,
    /// Opt-in calibrated mode: when set, every projection in the answer is
    /// rescaled by the fitted per-family overhead scales and rankings are
    /// ordered by *calibrated* time (see [`crate::calibrate`]). `None`
    /// (default) answers with the raw analytic model.
    pub calibration: Option<Calibration>,
}

impl Query {
    /// A suggest-mode query (the default mode).
    pub fn suggest() -> Self {
        Query::default()
    }

    /// A top-`k` ranking query.
    pub fn top_k(k: usize) -> Self {
        Query { mode: QueryMode::TopK(k), ..Query::default() }
    }

    /// A full-ranking query (every feasible candidate).
    pub fn full_rank() -> Self {
        Query { mode: QueryMode::FullRank, ..Query::default() }
    }

    /// A survey query at `pes` PEs.
    pub fn survey(pes: usize) -> Self {
        Query { mode: QueryMode::Survey { pes }, ..Query::default() }
    }

    /// Sets the model.
    pub fn with_model(mut self, model: Model) -> Self {
        self.model = Some(model);
        self
    }

    /// Sets the training configuration.
    pub fn with_config(mut self, config: TrainingConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Changes the global mini-batch of the already-set configuration.
    ///
    /// # Panics
    /// When no configuration is set yet (call [`Query::with_config`] first).
    pub fn with_batch(mut self, batch: usize) -> Self {
        let config =
            self.config.as_mut().expect("Query::with_batch requires with_config to be set first");
        config.batch_size = batch;
        self
    }

    /// Sets the cluster.
    pub fn with_cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Sets the search constraints.
    pub fn with_constraints(mut self, constraints: Constraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// Sets the answer mode.
    pub fn with_mode(mut self, mode: QueryMode) -> Self {
        self.mode = mode;
        self
    }

    /// Opts into calibrated answers (see [`crate::calibrate`]).
    pub fn with_calibration(mut self, calibration: Calibration) -> Self {
        self.calibration = Some(calibration);
        self
    }

    /// The constraints the search actually runs under: the mode's ranking
    /// depth overrides `constraints.top_k` ([`QueryMode::TopK`] forces
    /// `Some(k)`, [`QueryMode::FullRank`] forces `None`; the non-ranking
    /// modes leave the constraints untouched).
    pub fn effective_constraints(&self) -> Constraints {
        let mut c = self.constraints;
        match self.mode {
            QueryMode::TopK(k) => c.top_k = Some(k),
            QueryMode::FullRank => c.top_k = None,
            QueryMode::Suggest | QueryMode::Survey { .. } => {}
        }
        c
    }

    /// Answers a standalone query (model, config and cluster all set) by
    /// building the [`Oracle`] internally — the cluster's
    /// [`DeviceProfile`] supplies the compute model, exactly as the serve
    /// daemon does. Errors (rather than panics) on an incomplete workload
    /// or an invalid configuration, so the daemon can reject bad requests.
    /// The full [`Query::vet`] pass runs first, so a hostile spec is
    /// refused with a structured reason before any engine work.
    pub fn run(&self) -> Result<QueryAnswer, String> {
        self.vet().map_err(|e| e.to_string())?;
        let model = self.model.as_ref().ok_or("query has no model")?;
        let config = self.config.ok_or("query has no config")?;
        let cluster = self.cluster.as_ref().ok_or("query has no cluster")?;
        let oracle = Oracle::new(model, &cluster.device, cluster, config);
        oracle.answer(self).map_err(|e| e.to_string())
    }

    /// [`Query::run`] with panic containment: an evaluation panic (a bug,
    /// or a degenerate workload tripping an internal invariant) comes back
    /// as `Err` instead of unwinding into the caller. This is the
    /// error surface long-lived embedders (the serve daemon's batcher, a
    /// sweep driver) should use when one poisoned query must not take the
    /// process down.
    pub fn run_contained(&self) -> Result<QueryAnswer, String> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run())).unwrap_or_else(
            |payload| {
                let message = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "opaque panic payload".to_string()
                };
                Err(format!("evaluation panicked: {message}"))
            },
        )
    }

    /// Serializes the query for the wire. The model travels **by name**
    /// (the receiving side resolves it against its model zoo — shipping
    /// layer lists would dwarf every other field), the cluster and config
    /// travel inline in full. Errors when the workload is incomplete.
    pub fn to_json(&self) -> Result<Json, String> {
        let model = self.model.as_ref().ok_or("query has no model")?;
        let config = self.config.ok_or("query has no config")?;
        let cluster = self.cluster.as_ref().ok_or("query has no cluster")?;
        let mut fields = vec![
            ("model", Json::obj([("name", Json::str(&model.name))])),
            ("config", config_to_json(&config)),
            ("cluster", cluster_to_json(cluster)),
            ("constraints", constraints_to_json(&self.constraints)),
            ("mode", mode_to_json(self.mode)),
        ];
        if let Some(calibration) = &self.calibration {
            fields.push(("calibration", calibration.to_json()));
        }
        Ok(Json::obj(fields))
    }

    /// Parses a wire query. `resolve` maps a model name to a [`Model`]
    /// (the serve daemon passes its zoo lookup); unknown names, missing
    /// fields and type mismatches all come back as `Err`, never a panic —
    /// this sits on the daemon's untrusted-input path.
    pub fn from_json(
        json: &Json,
        resolve: &dyn Fn(&str) -> Option<Model>,
    ) -> Result<Query, String> {
        let name = json
            .get("model")
            .and_then(|m| m.get("name"))
            .and_then(Json::string)
            .ok_or("query missing model.name")?;
        let model = resolve(name).ok_or_else(|| format!("unknown model {name:?}"))?;
        let config = config_from_json(json.get("config").ok_or("query missing config")?)?;
        let cluster = cluster_from_json(json.get("cluster").ok_or("query missing cluster")?)?;
        let constraints =
            constraints_from_json(json.get("constraints").ok_or("query missing constraints")?)?;
        let mode = mode_from_json(json.get("mode").ok_or("query missing mode")?)?;
        // Calibration is opt-in on the wire too: absent means uncalibrated.
        let calibration = json.get("calibration").map(Calibration::from_json).transpose()?;
        Ok(Query {
            model: Some(model),
            config: Some(config),
            cluster: Some(cluster),
            constraints,
            mode,
            calibration,
        })
    }
}

/// The oracle's answer to a [`Query`], one variant per [`QueryMode`] shape.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryAnswer {
    /// [`QueryMode::Suggest`]: the best feasible strategy, if any.
    Suggestion(Option<Projection>),
    /// [`QueryMode::TopK`] / [`QueryMode::FullRank`]: the ranked report.
    Ranked(SearchReport),
    /// [`QueryMode::Survey`]: one projection per evaluated family.
    Survey(Vec<Projection>),
}

impl QueryAnswer {
    /// The search report, when this is a ranked answer.
    pub fn report(&self) -> Option<&SearchReport> {
        match self {
            QueryAnswer::Ranked(r) => Some(r),
            _ => None,
        }
    }

    /// The suggested projection, when this is a suggestion that found one.
    pub fn suggestion(&self) -> Option<&Projection> {
        match self {
            QueryAnswer::Suggestion(p) => p.as_ref(),
            _ => None,
        }
    }

    /// The per-family projections, when this is a survey answer.
    pub fn survey(&self) -> Option<&[Projection]> {
        match self {
            QueryAnswer::Survey(p) => Some(p),
            _ => None,
        }
    }

    /// The answer with `calibration` applied to every projection: rescaled
    /// estimates, and ranked answers re-sorted by *calibrated* epoch time
    /// (stable, so calibrated ties keep the engine's deterministic order).
    /// The candidate set itself is the uncalibrated search's — under
    /// [`QueryMode::TopK`] a candidate outside the uncalibrated top-k stays
    /// outside; [`QueryMode::FullRank`] has no such truncation. The
    /// per-budget winners keep their (uncalibrated-winner) identity with
    /// rescaled projections.
    pub fn recalibrated(&self, calibration: &Calibration) -> QueryAnswer {
        match self {
            QueryAnswer::Suggestion(p) => {
                QueryAnswer::Suggestion(p.as_ref().map(|p| calibration.apply_projection(p)))
            }
            QueryAnswer::Survey(ps) => {
                QueryAnswer::Survey(ps.iter().map(|p| calibration.apply_projection(p)).collect())
            }
            QueryAnswer::Ranked(report) => {
                let mut report = report.clone();
                for candidate in &mut report.ranked {
                    candidate.projection = calibration.apply_projection(&candidate.projection);
                }
                report.ranked.sort_by(|a, b| a.epoch_time().total_cmp(&b.epoch_time()));
                for winner in &mut report.best_per_budget {
                    winner.candidate.projection =
                        calibration.apply_projection(&winner.candidate.projection);
                }
                QueryAnswer::Ranked(report)
            }
        }
    }

    /// The best epoch time the answer contains, however it was asked:
    /// the suggestion's, the top-ranked candidate's, or the fastest
    /// feasible survey projection's.
    pub fn best_epoch_time(&self) -> Option<f64> {
        match self {
            QueryAnswer::Suggestion(p) => p.map(|p| p.cost.epoch_time()),
            QueryAnswer::Ranked(r) => r.best().map(RankedCandidate::epoch_time),
            QueryAnswer::Survey(ps) => ps
                .iter()
                .filter(|p| p.feasible())
                .map(|p| p.cost.epoch_time())
                .min_by(f64::total_cmp),
        }
    }

    /// Deterministic JSON form of the answer — same answer, same bytes.
    /// `pruned_by_bound` is deliberately **not** serialized: it is the one
    /// documented order-dependent field of a [`SearchReport`], and leaving
    /// it out is what makes served answers byte-comparable to local ones.
    pub fn to_json(&self) -> Json {
        match self {
            QueryAnswer::Suggestion(best) => Json::obj([
                ("kind", Json::str("suggestion")),
                ("found", Json::Bool(best.is_some())),
                ("best", best.map_or(Json::Null, |p| projection_to_json(&p))),
            ]),
            QueryAnswer::Ranked(report) => Json::obj([
                ("kind", Json::str("ranked")),
                ("enumerated", Json::count(report.enumerated)),
                ("pruned_by_memory", Json::count(report.pruned_by_memory)),
                (
                    "ranked",
                    Json::Arr(
                        report.ranked.iter().map(|c| projection_to_json(&c.projection)).collect(),
                    ),
                ),
                (
                    "best_per_budget",
                    Json::Arr(
                        report
                            .best_per_budget
                            .iter()
                            .map(|w| {
                                Json::obj([
                                    ("max_pes", Json::count(w.max_pes)),
                                    ("candidate", projection_to_json(&w.candidate.projection)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            QueryAnswer::Survey(projections) => Json::obj([
                ("kind", Json::str("survey")),
                ("projections", Json::Arr(projections.iter().map(projection_to_json).collect())),
            ]),
        }
    }
}

/// One projection as JSON: the strategy in its `Display` form, the headline
/// numbers, feasibility flags and the full per-phase breakdown.
fn projection_to_json(p: &Projection) -> Json {
    let phases = &p.cost.per_epoch;
    Json::obj([
        ("strategy", Json::str(p.cost.strategy.to_string())),
        ("pes", Json::count(p.cost.strategy.total_pes())),
        ("epoch_time", Json::Num(p.cost.epoch_time())),
        ("memory_per_pe", Json::Num(p.cost.memory_per_pe_bytes)),
        ("fits_memory", Json::Bool(p.fits_memory)),
        ("within_scaling_limit", Json::Bool(p.within_scaling_limit)),
        (
            "phases",
            Json::obj([
                ("forward_backward", Json::Num(phases.forward_backward)),
                ("weight_update", Json::Num(phases.weight_update)),
                ("gradient_exchange", Json::Num(phases.gradient_exchange)),
                ("fb_collective", Json::Num(phases.fb_collective)),
                ("halo_exchange", Json::Num(phases.halo_exchange)),
                ("pipeline_p2p", Json::Num(phases.pipeline_p2p)),
            ]),
        ),
    ])
}

fn config_to_json(c: &TrainingConfig) -> Json {
    Json::obj([
        ("dataset_size", Json::count(c.dataset_size)),
        ("batch_size", Json::count(c.batch_size)),
        ("epochs", Json::count(c.epochs)),
        ("bytes_per_item", Json::Num(c.bytes_per_item)),
        ("memory_reuse", Json::Num(c.memory_reuse)),
    ])
}

fn config_from_json(json: &Json) -> Result<TrainingConfig, String> {
    Ok(TrainingConfig {
        dataset_size: req_usize(json, "config", "dataset_size")?,
        batch_size: req_usize(json, "config", "batch_size")?,
        epochs: req_usize(json, "config", "epochs")?,
        bytes_per_item: req_num(json, "config", "bytes_per_item")?,
        memory_reuse: req_num(json, "config", "memory_reuse")?,
    })
}

fn link_to_json(l: &LinkParams) -> Json {
    Json::obj([("alpha", Json::Num(l.alpha)), ("beta", Json::Num(l.beta))])
}

fn link_from_json(json: &Json, what: &str) -> Result<LinkParams, String> {
    Ok(LinkParams { alpha: req_num(json, what, "alpha")?, beta: req_num(json, what, "beta")? })
}

fn cluster_to_json(c: &ClusterSpec) -> Json {
    Json::obj([
        (
            "device",
            Json::obj([
                ("peak_flops", Json::Num(c.device.peak_flops)),
                ("conv_efficiency", Json::Num(c.device.conv_efficiency)),
                ("memory_bound_efficiency", Json::Num(c.device.memory_bound_efficiency)),
                ("kernel_overhead", Json::Num(c.device.kernel_overhead)),
                ("update_elements_per_sec", Json::Num(c.device.update_elements_per_sec)),
            ]),
        ),
        ("gpus_per_node", Json::count(c.gpus_per_node)),
        ("nodes_per_rack", Json::count(c.nodes_per_rack)),
        ("racks", Json::count(c.racks)),
        ("intra_node", link_to_json(&c.intra_node)),
        ("intra_rack", link_to_json(&c.intra_rack)),
        ("inter_rack", link_to_json(&c.inter_rack)),
    ])
}

fn cluster_from_json(json: &Json) -> Result<ClusterSpec, String> {
    // Shorthand: `{"name": "paper"}` / `{"name": "workstation", "gpus": N}`
    // resolve to the core constructors, so clients needn't spell out links.
    if let Some(name) = json.get("name").and_then(Json::string) {
        return match name {
            "paper" => Ok(ClusterSpec::paper_system()),
            "workstation" => {
                let gpus = json.get("gpus").and_then(Json::usize).unwrap_or(8);
                Ok(ClusterSpec::workstation(gpus))
            }
            other => Err(format!("unknown cluster name {other:?}")),
        };
    }
    let device = json.get("device").ok_or("cluster missing device")?;
    Ok(ClusterSpec {
        device: DeviceProfile {
            peak_flops: req_num(device, "device", "peak_flops")?,
            conv_efficiency: req_num(device, "device", "conv_efficiency")?,
            memory_bound_efficiency: req_num(device, "device", "memory_bound_efficiency")?,
            kernel_overhead: req_num(device, "device", "kernel_overhead")?,
            update_elements_per_sec: req_num(device, "device", "update_elements_per_sec")?,
        },
        gpus_per_node: req_usize(json, "cluster", "gpus_per_node")?,
        nodes_per_rack: req_usize(json, "cluster", "nodes_per_rack")?,
        racks: req_usize(json, "cluster", "racks")?,
        intra_node: link_from_json(
            json.get("intra_node").ok_or("cluster missing intra_node")?,
            "intra_node",
        )?,
        intra_rack: link_from_json(
            json.get("intra_rack").ok_or("cluster missing intra_rack")?,
            "intra_rack",
        )?,
        inter_rack: link_from_json(
            json.get("inter_rack").ok_or("cluster missing inter_rack")?,
            "inter_rack",
        )?,
    })
}

fn constraints_to_json(c: &Constraints) -> Json {
    Json::obj([
        ("max_pes", Json::count(c.max_pes)),
        ("memory_capacity_bytes", Json::Num(c.memory_capacity_bytes)),
        ("pipeline_segments", Json::count(c.pipeline_segments)),
        ("top_k", c.top_k.map_or(Json::Null, Json::count)),
        (
            "sweep",
            Json::str(match c.sweep {
                PeSweep::PowersOfTwo => "powers_of_two",
                PeSweep::Exhaustive => "exhaustive",
            }),
        ),
    ])
}

fn constraints_from_json(json: &Json) -> Result<Constraints, String> {
    let top_k = match json.get("top_k") {
        None | Some(Json::Null) => None,
        Some(v) => Some(v.usize().ok_or("constraints.top_k must be a count or null")?),
    };
    let sweep = match json.get("sweep").and_then(Json::string) {
        None | Some("powers_of_two") => PeSweep::PowersOfTwo,
        Some("exhaustive") => PeSweep::Exhaustive,
        Some(other) => return Err(format!("unknown sweep mode {other:?}")),
    };
    Ok(Constraints {
        max_pes: req_usize(json, "constraints", "max_pes")?,
        memory_capacity_bytes: req_num(json, "constraints", "memory_capacity_bytes")?,
        pipeline_segments: req_usize(json, "constraints", "pipeline_segments")?,
        top_k,
        sweep,
    })
}

fn mode_to_json(mode: QueryMode) -> Json {
    match mode {
        QueryMode::Suggest => Json::obj([("kind", Json::str("suggest"))]),
        QueryMode::TopK(k) => Json::obj([("kind", Json::str("top_k")), ("k", Json::count(k))]),
        QueryMode::FullRank => Json::obj([("kind", Json::str("full_rank"))]),
        QueryMode::Survey { pes } => {
            Json::obj([("kind", Json::str("survey")), ("pes", Json::count(pes))])
        }
    }
}

fn mode_from_json(json: &Json) -> Result<QueryMode, String> {
    match json.get("kind").and_then(Json::string) {
        Some("suggest") => Ok(QueryMode::Suggest),
        Some("top_k") => {
            Ok(QueryMode::TopK(json.get("k").and_then(Json::usize).ok_or("mode top_k missing k")?))
        }
        Some("full_rank") => Ok(QueryMode::FullRank),
        Some("survey") => Ok(QueryMode::Survey {
            pes: json.get("pes").and_then(Json::usize).ok_or("mode survey missing pes")?,
        }),
        Some(other) => Err(format!("unknown query mode {other:?}")),
        None => Err("mode missing kind".to_string()),
    }
}

fn req_num(json: &Json, what: &str, key: &str) -> Result<f64, String> {
    json.get(key).and_then(Json::number).ok_or_else(|| format!("{what}.{key} must be a number"))
}

fn req_usize(json: &Json, what: &str, key: &str) -> Result<usize, String> {
    json.get(key)
        .and_then(Json::usize)
        .ok_or_else(|| format!("{what}.{key} must be a non-negative integer"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;

    fn model() -> Model {
        Model::new(
            "toy",
            3,
            vec![32, 32],
            vec![
                Layer::conv2d("c1", 3, 64, (32, 32), 3, 1, 1),
                Layer::pool2d("p1", 64, (32, 32), 2, 2),
                Layer::conv2d("c2", 64, 128, (16, 16), 3, 1, 1),
                Layer::global_pool("g", 128, &[16, 16]),
                Layer::fully_connected("fc", 128, 10),
            ],
        )
    }

    fn full_query(mode: QueryMode) -> Query {
        Query::default()
            .with_model(model())
            .with_config(TrainingConfig::small(8192, 64))
            .with_cluster(ClusterSpec::paper_system())
            .with_mode(mode)
    }

    #[test]
    fn effective_constraints_follow_the_mode() {
        let base = Constraints { top_k: Some(3), ..Constraints::default() };
        let q = Query::top_k(7).with_constraints(base);
        assert_eq!(q.effective_constraints().top_k, Some(7));
        let q = Query::full_rank().with_constraints(base);
        assert_eq!(q.effective_constraints().top_k, None);
        let q = Query::suggest().with_constraints(base);
        assert_eq!(q.effective_constraints().top_k, Some(3));
        let q = Query::survey(16).with_constraints(base);
        assert_eq!(q.effective_constraints(), base);
    }

    #[test]
    fn run_requires_a_complete_workload() {
        assert!(Query::suggest().run().is_err());
        assert!(Query::suggest().with_model(model()).run().is_err());
        assert!(full_query(QueryMode::Suggest).run().is_ok());
        // And an invalid config is rejected, not evaluated.
        let bad = full_query(QueryMode::Suggest).with_config(TrainingConfig::small(8, 64));
        assert!(bad.run().unwrap_err().contains("invalid config"));
    }

    #[test]
    fn wire_round_trip_preserves_the_query() {
        let m = model();
        let resolve = |name: &str| (name == "toy").then(|| m.clone());
        for mode in [
            QueryMode::Suggest,
            QueryMode::TopK(5),
            QueryMode::FullRank,
            QueryMode::Survey { pes: 16 },
        ] {
            let q = full_query(mode).with_constraints(Constraints {
                max_pes: 256,
                top_k: Some(2),
                sweep: PeSweep::Exhaustive,
                ..Constraints::default()
            });
            let json = q.to_json().unwrap();
            // Through actual bytes, as the wire does.
            let reparsed = Json::parse(&json.render()).unwrap();
            let back = Query::from_json(&reparsed, &resolve).unwrap();
            assert_eq!(back, q, "{mode:?}");
        }
    }

    #[test]
    fn wire_shorthand_clusters_resolve() {
        let m = model();
        let resolve = |name: &str| (name == "toy").then(|| m.clone());
        let mut json = full_query(QueryMode::Suggest).to_json().unwrap();
        if let Json::Obj(fields) = &mut json {
            let cluster = &mut fields.iter_mut().find(|(k, _)| k == "cluster").unwrap().1;
            *cluster = Json::obj([("name", Json::str("workstation")), ("gpus", Json::count(4))]);
        }
        let q = Query::from_json(&json, &resolve).unwrap();
        assert_eq!(q.cluster, Some(ClusterSpec::workstation(4)));
    }

    #[test]
    fn malformed_wire_queries_error_readably() {
        let m = model();
        let resolve = |name: &str| (name == "toy").then(|| m.clone());
        let good = full_query(QueryMode::Suggest).to_json().unwrap();
        // Unknown model.
        let mut bad = good.clone();
        if let Json::Obj(fields) = &mut bad {
            fields[0].1 = Json::obj([("name", Json::str("nope"))]);
        }
        assert!(Query::from_json(&bad, &resolve).unwrap_err().contains("unknown model"));
        // Missing config.
        let mut bad = good.clone();
        if let Json::Obj(fields) = &mut bad {
            fields.retain(|(k, _)| k != "config");
        }
        assert!(Query::from_json(&bad, &resolve).unwrap_err().contains("missing config"));
        // Wrong type.
        let mut bad = good;
        if let Json::Obj(fields) = &mut bad {
            let config = &mut fields.iter_mut().find(|(k, _)| k == "config").unwrap().1;
            if let Json::Obj(cfg) = config {
                cfg.iter_mut().find(|(k, _)| k == "batch_size").unwrap().1 = Json::str("big");
            }
        }
        assert!(Query::from_json(&bad, &resolve).is_err());
    }

    #[test]
    fn answer_json_is_deterministic_and_reparses() {
        for mode in [
            QueryMode::Suggest,
            QueryMode::TopK(5),
            QueryMode::FullRank,
            QueryMode::Survey { pes: 16 },
        ] {
            let q = full_query(mode);
            let a = q.run().unwrap();
            let j1 = a.to_json().render();
            let j2 = q.run().unwrap().to_json().render();
            assert_eq!(j1, j2, "{mode:?} answers must serialize identically");
            Json::parse(&j1).unwrap();
        }
    }

    #[test]
    fn answer_accessors_match_modes() {
        let suggest = full_query(QueryMode::Suggest).run().unwrap();
        assert!(suggest.suggestion().is_some());
        assert!(suggest.report().is_none());
        let t = suggest.best_epoch_time().unwrap();
        assert!(t > 0.0);

        let ranked = full_query(QueryMode::TopK(5)).run().unwrap();
        let report = ranked.report().unwrap();
        assert_eq!(report.ranked.len(), 5);
        assert!(ranked.best_epoch_time().unwrap() <= t + 1e-12);

        let survey = full_query(QueryMode::Survey { pes: 16 }).run().unwrap();
        assert!(!survey.survey().unwrap().is_empty());
        assert!(survey.best_epoch_time().is_some());
    }
}
