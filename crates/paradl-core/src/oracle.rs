//! The ParaDL oracle front-end (paper §4.1, Figure 2).
//!
//! Given the model, the dataset/training configuration, the system
//! specification and the user's constraints (maximum number of PEs, memory
//! capacity), the oracle projects the performance of each parallel strategy,
//! suggests the best one, and compares projections with measured results to
//! compute the accuracy metric reported in §5.2.

use crate::calibrate::Calibration;
use crate::cluster::ClusterSpec;
use crate::compute::ComputeModel;
use crate::config::TrainingConfig;
use crate::cost::{estimate, CostEstimate, PhaseBreakdown};
use crate::engine::{CostEngine, EngineCore, EngineError};
use crate::memory;
use crate::model::Model;
use crate::query::{Query, QueryAnswer, QueryMode};
use crate::strategy::{SpatialSplit, Strategy, StrategyKind};
use std::sync::{Arc, OnceLock};

pub use crate::search::{BudgetWinner, RankedCandidate, SearchReport, StrategySpace};

/// How the candidate enumeration sweeps PE counts within each strategy
/// family's scaling limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PeSweep {
    /// Powers of two only — the paper's sweep, and the default.
    #[default]
    PowersOfTwo,
    /// Every integer PE count the scaling limits admit. Spaces grow by
    /// orders of magnitude (CosmoFlow at 16 Ki PEs enumerates > 100 k
    /// candidates); meant for the engine-backed pruned search.
    Exhaustive,
}

/// User constraints for the strategy search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraints {
    /// Maximum number of PEs the user is willing to provision.
    pub max_pes: usize,
    /// Per-PE memory capacity in bytes.
    pub memory_capacity_bytes: f64,
    /// Number of pipeline segments to assume when evaluating the pipeline
    /// strategy.
    pub pipeline_segments: usize,
    /// When `Some(k)`, [`crate::search`] keeps only the `k` best candidates
    /// (bounded-heap ranking) and branch-and-bound prunes candidates whose
    /// compute-only lower bound cannot beat the current winners. `None`
    /// (default) ranks every feasible candidate and never bound-prunes.
    pub top_k: Option<usize>,
    /// PE-count sweep mode of the candidate enumeration.
    pub sweep: PeSweep,
}

impl Default for Constraints {
    fn default() -> Self {
        Constraints {
            max_pes: 1024,
            memory_capacity_bytes: memory::V100_MEMORY_BYTES,
            pipeline_segments: 8,
            top_k: None,
            sweep: PeSweep::PowersOfTwo,
        }
    }
}

/// The oracle: owns the problem description and answers projection queries.
pub struct Oracle<'a, C: ComputeModel + ?Sized> {
    /// The CNN model being trained.
    pub model: &'a Model,
    /// Per-layer compute-time source (empirical parametrization).
    pub device: &'a C,
    /// System specification.
    pub cluster: &'a ClusterSpec,
    /// Training configuration (D, B, δ, γ).
    pub config: TrainingConfig,
    /// Lazily built batch-invariant engine core, so repeated
    /// [`Oracle::engine`] calls on one oracle pay the `O(layers²)`
    /// tabulation once and hydrate afterwards. Build failures are cached
    /// too: a degenerate problem keeps returning the same typed error.
    core_cache: OnceLock<Result<Arc<EngineCore>, EngineError>>,
}

/// A projection for one concrete strategy, with feasibility information.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Projection {
    /// Cost estimate (time breakdown + memory).
    pub cost: CostEstimate,
    /// Whether the strategy fits the per-PE memory capacity.
    pub fits_memory: bool,
    /// Whether the strategy respects its scaling limit for this model/batch.
    pub within_scaling_limit: bool,
}

impl Projection {
    /// A strategy is feasible when it fits in memory and respects its scaling
    /// limit.
    pub fn feasible(&self) -> bool {
        self.fits_memory && self.within_scaling_limit
    }
}

impl<'a, C: ComputeModel + ?Sized> Oracle<'a, C> {
    /// Creates an oracle for the given problem.
    pub fn new(
        model: &'a Model,
        device: &'a C,
        cluster: &'a ClusterSpec,
        config: TrainingConfig,
    ) -> Self {
        Oracle { model, device, cluster, config, core_cache: OnceLock::new() }
    }

    /// The precomputed [`CostEngine`] for this oracle's problem. The first
    /// call pays the `O(layers²)` tabulation pass; the batch-invariant core
    /// is then cached on the oracle, so every later call merely hydrates a
    /// new engine from it ([`CostEngine::from_core`] — byte-for-byte
    /// identical to a fresh build, at `O(layers²)` float cost instead of
    /// the full device/topology pass). The search, [`Oracle::survey`] and
    /// [`Oracle::suggest`] all go through it.
    /// # Panics
    ///
    /// Panics if the engine refuses to build (see [`Oracle::try_engine`]
    /// for the fallible variant; [`Query::vet`] screens out the inputs that
    /// trigger this).
    pub fn engine(&self) -> CostEngine<'a> {
        self.try_engine().expect("oracle engine build failed")
    }

    /// Fallible variant of [`Oracle::engine`]: a degenerate problem (zero
    /// batch, non-finite device rates, …) returns the
    /// [`EngineError`] the build produced instead of panicking. The error
    /// is cached alongside the success path, so retries are cheap.
    pub fn try_engine(&self) -> Result<CostEngine<'a>, EngineError> {
        let core = self.core_cache.get_or_init(|| {
            Ok(CostEngine::new(self.model, self.device, self.cluster, self.config)?.core_handle())
        });
        match core {
            Ok(core) => {
                CostEngine::from_core(self.model, self.cluster, self.config, Arc::clone(core))
            }
            Err(e) => Err(e.clone()),
        }
    }

    /// Projects the cost of a single strategy (reference slow path; for
    /// repeated projections under one configuration prefer
    /// [`Oracle::engine`]).
    pub fn project(&self, strategy: Strategy) -> Projection {
        self.project_with(strategy, &self.config)
    }

    /// Projects the cost of a strategy under an explicit configuration
    /// (useful for weak-scaling sweeps where `B` grows with `p`).
    pub fn project_with(&self, strategy: Strategy, config: &TrainingConfig) -> Projection {
        let cost = estimate(self.model, self.device, self.cluster, config, strategy);
        let fits_memory = cost.memory_per_pe_bytes <= memory::V100_MEMORY_BYTES.max(0.0)
            || cost.memory_per_pe_bytes <= f64::INFINITY;
        // Feasibility against the *cluster device* capacity is checked by the
        // caller through `Constraints`; here we only record scaling validity.
        let within_scaling_limit = strategy.validate(self.model, config.batch_size).is_ok();
        Projection { cost, fits_memory, within_scaling_limit }
    }

    /// Builds a concrete strategy of the given kind using `p` PEs, choosing
    /// balanced splits for the composite strategies. Hybrid strategies place
    /// the model-parallel dimension inside a node (`gpus_per_node` PEs per
    /// group) as the paper's implementation does (§4.5.1).
    pub fn instantiate(&self, kind: StrategyKind, p: usize, segments: usize) -> Strategy {
        let per_node = self.cluster.gpus_per_node.max(1);
        match kind {
            StrategyKind::Serial => Strategy::Serial,
            StrategyKind::Data => Strategy::Data { p },
            StrategyKind::Spatial => {
                if self.model.input_spatial.len() >= 3 {
                    Strategy::Spatial { split: SpatialSplit::balanced_3d(p) }
                } else {
                    Strategy::Spatial { split: SpatialSplit::balanced_2d(p) }
                }
            }
            StrategyKind::Filter => Strategy::Filter { p },
            StrategyKind::Channel => Strategy::Channel { p },
            StrategyKind::Pipeline => Strategy::Pipeline { p, segments },
            StrategyKind::DataFilter => {
                let p2 = per_node.min(p);
                Strategy::DataFilter { p1: (p / p2).max(1), p2 }
            }
            StrategyKind::DataSpatial => {
                let p2 = per_node.min(p);
                let split = if self.model.input_spatial.len() >= 3 {
                    SpatialSplit::balanced_3d(p2)
                } else {
                    SpatialSplit::balanced_2d(p2)
                };
                Strategy::DataSpatial { p1: (p / p2).max(1), split }
            }
        }
    }

    /// Projects a strategy through a prebuilt [`CostEngine`], flagging memory
    /// feasibility against `constraints`. The scaling-limit check uses the
    /// engine's current batch, so it stays correct for rebatched engines.
    fn project_engine(
        &self,
        engine: &CostEngine<'_>,
        strategy: Strategy,
        constraints: &Constraints,
    ) -> Projection {
        let cost = engine.estimate(strategy);
        Projection {
            cost,
            fits_memory: cost.memory_per_pe_bytes <= constraints.memory_capacity_bytes,
            within_scaling_limit: engine.limits().is_valid(strategy, engine.config().batch_size),
        }
    }

    /// Projects every evaluated strategy family at `p` PEs and returns the
    /// projections (infeasible strategies are included and flagged).
    /// Equivalent to answering a [`QueryMode::Survey`] query; the cached
    /// engine core makes repeated calls cheap.
    pub fn survey(&self, p: usize, constraints: &Constraints) -> Vec<Projection> {
        self.survey_impl(&self.engine(), p, constraints)
    }

    /// Survey evaluation through an explicit engine — the shared body of
    /// [`Oracle::survey`] and the [`QueryMode::Survey`] arm of
    /// [`Oracle::answer_with_engine`] (the engine-reuse entry point).
    pub(crate) fn survey_impl(
        &self,
        engine: &CostEngine<'_>,
        p: usize,
        constraints: &Constraints,
    ) -> Vec<Projection> {
        StrategyKind::EVALUATED
            .iter()
            .map(|&kind| {
                let s = self.instantiate(kind, p, constraints.pipeline_segments);
                self.project_engine(engine, s, constraints)
            })
            .collect()
    }

    /// Suggests the best feasible strategy within the constraints: the one
    /// with the smallest projected epoch time among those that fit memory and
    /// scaling limits (paper §4.1, first bullet). Equivalent to answering a
    /// [`QueryMode::Suggest`] query; the cached engine core makes repeated
    /// calls cheap.
    pub fn suggest(&self, constraints: &Constraints) -> Option<Projection> {
        self.suggest_impl(&self.engine(), constraints, None)
    }

    /// Suggest evaluation through an explicit engine — the shared body of
    /// [`Oracle::suggest`] and the [`QueryMode::Suggest`] arm of
    /// [`Oracle::answer_with_engine`]; the sweep limits come from the
    /// *engine's* current batch, consistently with the exhaustive search.
    /// With a calibration, candidates compete on *calibrated* epoch time
    /// and the winning projection is returned calibrated — a family whose
    /// fitted overheads erase its raw-model advantage loses the suggestion.
    pub(crate) fn suggest_impl(
        &self,
        engine: &CostEngine<'_>,
        constraints: &Constraints,
        calibration: Option<&Calibration>,
    ) -> Option<Projection> {
        let batch = engine.config().batch_size;
        let mut best: Option<Projection> = None;
        for &kind in &StrategyKind::EVALUATED {
            let max_p = engine.limits().max_pes(batch, kind).min(constraints.max_pes);
            // Evaluate at powers of two up to the limit (the paper's sweep).
            let mut p = 1usize;
            while p <= max_p {
                let s = self.instantiate(kind, p, constraints.pipeline_segments);
                let proj = self.project_engine(engine, s, constraints);
                let proj = match calibration {
                    Some(cal) => cal.apply_projection(&proj),
                    None => proj,
                };
                if proj.feasible() {
                    let better = match &best {
                        None => true,
                        Some(b) => proj.cost.epoch_time() < b.cost.epoch_time(),
                    };
                    if better {
                        best = Some(proj);
                    }
                }
                if p == max_p {
                    break;
                }
                p = (p * 2).min(max_p);
            }
        }
        best
    }
}

impl<C: ComputeModel + ?Sized + Sync> Oracle<'_, C> {
    /// Answers a [`Query`] — the canonical entry point uniting the oracle's
    /// historical `suggest`/`search`/`survey` roles behind one request
    /// type. Only the query's `constraints` and `mode` are consulted: the
    /// oracle *is* the workload (a query's own model/config/cluster fields
    /// are for the standalone [`Query::run`] and the wire protocol).
    ///
    /// The ranked modes run the exhaustive parallel search (hence the
    /// `Sync` bound); see [`Query::effective_constraints`] for how the mode
    /// picks the ranking depth. A degenerate problem that defeats engine
    /// construction (zero batch, non-finite device rates) returns the
    /// build's [`EngineError`] instead of panicking.
    pub fn answer(&self, query: &Query) -> Result<QueryAnswer, EngineError> {
        Ok(self.answer_with_engine(&self.try_engine()?, query))
    }

    /// Like [`Oracle::answer`], but evaluates through a [`CostEngine`] the
    /// caller already built (possibly [`CostEngine::rebatch`]ed or hydrated
    /// from a cached core) — the engine-reuse hook the `paradl-serve`
    /// daemon uses for its non-coalescable modes.
    /// With `query.calibration` set, answers come back calibrated: the
    /// suggestion competes on calibrated time, surveys and rankings are
    /// rescaled ([`QueryAnswer::recalibrated`]) — the search itself runs on
    /// the uncalibrated engine, whose kernel invariants (bit-consistent
    /// `CommCoef` reconstruction, admissible lower bounds) presume raw
    /// analytic costs.
    pub fn answer_with_engine(&self, engine: &CostEngine<'_>, query: &Query) -> QueryAnswer {
        let constraints = query.effective_constraints();
        match query.mode {
            QueryMode::Suggest => QueryAnswer::Suggestion(self.suggest_impl(
                engine,
                &constraints,
                query.calibration.as_ref(),
            )),
            QueryMode::Survey { pes } => {
                let survey = QueryAnswer::Survey(self.survey_impl(engine, pes, &constraints));
                match &query.calibration {
                    Some(cal) => survey.recalibrated(cal),
                    None => survey,
                }
            }
            QueryMode::TopK(_) | QueryMode::FullRank => {
                let ranked = QueryAnswer::Ranked(self.search_impl(engine, &constraints));
                match &query.calibration {
                    Some(cal) => ranked.recalibrated(cal),
                    None => ranked,
                }
            }
        }
    }
}

/// Accuracy of a projection against a measured value, as defined in §5.2:
/// `1 − |projected − measured| / measured`, clamped at 0.
pub fn projection_accuracy(projected: f64, measured: f64) -> f64 {
    if measured <= 0.0 {
        return 0.0;
    }
    (1.0 - (projected - measured).abs() / measured).max(0.0)
}

/// Accuracy of a full phase breakdown against a measured breakdown, using the
/// total times (the paper's per-column accuracy labels in Figure 3).
pub fn breakdown_accuracy(projected: &PhaseBreakdown, measured: &PhaseBreakdown) -> f64 {
    projection_accuracy(projected.total(), measured.total())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::DeviceProfile;
    use crate::layer::Layer;

    fn model() -> Model {
        Model::new(
            "m",
            3,
            vec![32, 32],
            vec![
                Layer::conv2d("c1", 3, 64, (32, 32), 3, 1, 1),
                Layer::pool2d("p1", 64, (32, 32), 2, 2),
                Layer::conv2d("c2", 64, 128, (16, 16), 3, 1, 1),
                Layer::global_pool("g", 128, &[16, 16]),
                Layer::fully_connected("fc", 128, 10),
            ],
        )
    }

    #[test]
    fn accuracy_metric_matches_paper_definition() {
        assert!((projection_accuracy(90.0, 100.0) - 0.9).abs() < 1e-12);
        assert!((projection_accuracy(110.0, 100.0) - 0.9).abs() < 1e-12);
        assert_eq!(projection_accuracy(300.0, 100.0), 0.0);
        assert_eq!(projection_accuracy(1.0, 0.0), 0.0);
        assert!((projection_accuracy(100.0, 100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn survey_covers_all_evaluated_strategies() {
        let m = model();
        let d = DeviceProfile::v100();
        let c = ClusterSpec::paper_system();
        let cfg = TrainingConfig::small(8192, 64);
        let oracle = Oracle::new(&m, &d, &c, cfg);
        let survey = oracle.survey(16, &Constraints::default());
        assert_eq!(survey.len(), StrategyKind::EVALUATED.len());
        for proj in &survey {
            assert!(proj.cost.epoch_time().is_finite());
        }
    }

    #[test]
    fn suggest_returns_a_feasible_strategy() {
        let m = model();
        let d = DeviceProfile::v100();
        let c = ClusterSpec::paper_system();
        let cfg = TrainingConfig::small(8192, 64);
        let oracle = Oracle::new(&m, &d, &c, cfg);
        let best = oracle.suggest(&Constraints::default()).expect("some strategy feasible");
        assert!(best.feasible());
        assert!(best.cost.epoch_time() > 0.0);
        // With plenty of memory and a compute-bound model, data parallelism at
        // the largest feasible scale should win.
        assert_eq!(best.cost.strategy.kind(), StrategyKind::Data);
    }

    #[test]
    fn instantiate_hybrids_use_node_sized_groups() {
        let m = model();
        let d = DeviceProfile::v100();
        let c = ClusterSpec::paper_system();
        let cfg = TrainingConfig::small(8192, 64);
        let oracle = Oracle::new(&m, &d, &c, cfg);
        match oracle.instantiate(StrategyKind::DataFilter, 64, 8) {
            Strategy::DataFilter { p1, p2 } => {
                assert_eq!(p2, c.gpus_per_node);
                assert_eq!(p1 * p2, 64);
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn with_engine_answers_match_fresh_builds() {
        let m = model();
        let d = DeviceProfile::v100();
        let c = ClusterSpec::paper_system();
        let cfg = TrainingConfig::small(8192, 64);
        let oracle = Oracle::new(&m, &d, &c, cfg);
        let constraints = Constraints::default();
        let engine = oracle.engine();
        let suggest = Query::suggest().with_constraints(constraints);
        let survey = Query::survey(16).with_constraints(constraints);

        let fresh = oracle.suggest(&constraints).unwrap();
        let reused = oracle.answer_with_engine(&engine, &suggest);
        assert_eq!(fresh.cost, reused.suggestion().unwrap().cost);

        assert_eq!(
            oracle.survey(16, &constraints).as_slice(),
            oracle.answer_with_engine(&engine, &survey).survey().unwrap()
        );

        // A rebatched engine answers the other batch's problem exactly.
        let cfg2 = TrainingConfig::small(8192, 128);
        let oracle2 = Oracle::new(&m, &d, &c, cfg2);
        let rebatched = engine.rebatched(128);
        assert_eq!(
            oracle2.suggest(&constraints).unwrap().cost,
            oracle2.answer_with_engine(&rebatched, &suggest).suggestion().unwrap().cost
        );
        assert_eq!(
            oracle2.survey(16, &constraints).as_slice(),
            oracle2.answer_with_engine(&rebatched, &survey).survey().unwrap()
        );
    }

    #[test]
    fn constraint_on_memory_rules_out_strategies() {
        let m = model();
        let d = DeviceProfile::v100();
        let c = ClusterSpec::paper_system();
        let cfg = TrainingConfig::small(8192, 256);
        let oracle = Oracle::new(&m, &d, &c, cfg);
        let tight = Constraints { memory_capacity_bytes: 1.0, ..Default::default() };
        assert!(oracle.suggest(&tight).is_none());
    }
}
