//! Training-run configuration: dataset size `D`, global mini-batch `B`,
//! number of epochs `E`, datum width `δ` and the memory-reuse factor `γ`
//! (paper Table 2 and §4.2).

/// Configuration of one training run, shared by every strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingConfig {
    /// Dataset size `D` (number of samples).
    pub dataset_size: usize,
    /// Global mini-batch size `B`. Under weak scaling this is
    /// `samples_per_pe × p`.
    pub batch_size: usize,
    /// Number of epochs `E` (the oracle reports per-epoch times, so this only
    /// matters for total-time queries).
    pub epochs: usize,
    /// Bytes per tensor element `δ` (4 for FP32, 2 for FP16).
    pub bytes_per_item: f64,
    /// Memory-reuse factor `γ ∈ (0, 1]` applied to the naive per-layer memory
    /// aggregation to account for framework buffer reuse (§4.2).
    pub memory_reuse: f64,
}

impl TrainingConfig {
    /// ImageNet-scale defaults: D = 1.28 M samples, FP32, γ = 0.7.
    pub fn imagenet(batch_size: usize) -> Self {
        TrainingConfig {
            dataset_size: 1_281_167,
            batch_size,
            epochs: 90,
            bytes_per_item: 4.0,
            memory_reuse: 0.7,
        }
    }

    /// CosmoFlow-scale defaults: D = 1584 samples (paper Table 5), FP32.
    pub fn cosmoflow(batch_size: usize) -> Self {
        TrainingConfig {
            dataset_size: 1584,
            batch_size,
            epochs: 50,
            bytes_per_item: 4.0,
            memory_reuse: 0.7,
        }
    }

    /// A small configuration for unit tests and examples.
    pub fn small(dataset_size: usize, batch_size: usize) -> Self {
        TrainingConfig {
            dataset_size,
            batch_size,
            epochs: 1,
            bytes_per_item: 4.0,
            memory_reuse: 1.0,
        }
    }

    /// Number of iterations per epoch `I = D / B` (at least 1).
    pub fn iterations_per_epoch(&self) -> usize {
        (self.dataset_size / self.batch_size).max(1)
    }

    /// Weak-scaling variant: keeps `samples_per_pe` constant so that
    /// `B = samples_per_pe × p` (the paper's de-facto scaling mode, §4.2).
    pub fn weak_scaled(mut self, samples_per_pe: usize, p: usize) -> Self {
        self.batch_size = samples_per_pe * p;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.dataset_size == 0 {
            return Err("dataset size must be positive".into());
        }
        if self.batch_size == 0 {
            return Err("batch size must be positive".into());
        }
        if self.batch_size > self.dataset_size {
            return Err(format!(
                "batch size {} exceeds dataset size {}",
                self.batch_size, self.dataset_size
            ));
        }
        if self.bytes_per_item.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err("bytes per item must be positive".into());
        }
        if !(self.memory_reuse > 0.0 && self.memory_reuse <= 1.0) {
            return Err("memory reuse factor must be in (0, 1]".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterations_per_epoch_is_d_over_b() {
        let c = TrainingConfig::small(1000, 50);
        assert_eq!(c.iterations_per_epoch(), 20);
        let c2 = TrainingConfig::small(10, 16);
        assert!(c2.validate().is_err());
    }

    #[test]
    fn weak_scaling_grows_batch_with_pes() {
        let c = TrainingConfig::imagenet(32).weak_scaled(32, 64);
        assert_eq!(c.batch_size, 32 * 64);
    }

    #[test]
    fn validation_rules() {
        assert!(TrainingConfig::small(100, 10).validate().is_ok());
        let mut c = TrainingConfig::small(100, 10);
        c.memory_reuse = 0.0;
        assert!(c.validate().is_err());
        c.memory_reuse = 1.5;
        assert!(c.validate().is_err());
        c.memory_reuse = 0.5;
        c.bytes_per_item = 0.0;
        assert!(c.validate().is_err());
    }
}
