//! Communication cost model (paper §4.3).
//!
//! Peer-to-peer transfers follow the Hockney α–β model,
//! `T_p2p(m) = α + m·β`, where `α` is the start-up latency and `β` the
//! inverse bandwidth (seconds per byte). Collectives follow the common NCCL
//! practice: ring algorithms for large messages and tree algorithms for small
//! ones. A contention penalty coefficient `φ` divides the effective link
//! bandwidth by the number of flows sharing the link (self-contention of the
//! training job, e.g. the segmented Allreduces of hybrid strategies).

/// Hockney parameters of a (logical) link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Start-up latency α in seconds.
    pub alpha: f64,
    /// Inverse bandwidth β in seconds per byte.
    pub beta: f64,
}

impl LinkParams {
    /// Builds link parameters from a latency in microseconds and a bandwidth
    /// in GB/s — the units vendors quote.
    pub fn from_latency_bandwidth(latency_us: f64, bandwidth_gbps: f64) -> Self {
        LinkParams { alpha: latency_us * 1e-6, beta: 1.0 / (bandwidth_gbps * 1e9) }
    }

    /// NVLink-class intra-node link (paper system: 20 GB/s NVLink).
    pub fn nvlink() -> Self {
        Self::from_latency_bandwidth(5.0, 20.0)
    }

    /// PCIe Gen3 x16 (16 GB/s).
    pub fn pcie_gen3() -> Self {
        Self::from_latency_bandwidth(8.0, 16.0)
    }

    /// InfiniBand EDR (12.5 GB/s per rail, two rails per node in the paper's
    /// system; we expose a single-rail default).
    pub fn infiniband_edr() -> Self {
        Self::from_latency_bandwidth(15.0, 12.5)
    }

    /// Inter-rack InfiniBand with 1:3 over-subscription.
    pub fn infiniband_oversubscribed() -> Self {
        Self::from_latency_bandwidth(20.0, 12.5 / 3.0)
    }

    /// Peer-to-peer time for `m` bytes: `α + m·β`.
    pub fn p2p_time(&self, bytes: f64) -> f64 {
        self.alpha + bytes * self.beta
    }

    /// Returns a copy with the bandwidth divided by the contention factor φ.
    pub fn with_contention(&self, phi: f64) -> Self {
        LinkParams { alpha: self.alpha, beta: self.beta * phi.max(1.0) }
    }
}

/// Collective algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveAlgorithm {
    /// Ring algorithm: `2(p−1)` steps of `m/p` bytes for Allreduce,
    /// `(p−1)` steps for Allgather/Reduce-Scatter.
    Ring,
    /// Tree algorithm for small messages: `2(log2 p + k)` pipelined steps with
    /// the message split into `k` chunks (paper footnote 4).
    Tree {
        /// Number of pipeline chunks `k`.
        chunks: usize,
    },
    /// Automatic selection: tree below the threshold, ring above.
    Auto {
        /// Message-size threshold in bytes for switching from tree to ring.
        threshold_bytes: usize,
    },
}

impl Default for CollectiveAlgorithm {
    fn default() -> Self {
        // NCCL-like default: small messages use trees, large use rings.
        CollectiveAlgorithm::Auto { threshold_bytes: 512 * 1024 }
    }
}

/// Communication model over a set of `p` PEs connected with homogeneous
/// `link` parameters (the hierarchical refinement lives in
/// [`crate::cluster::ClusterSpec`], which produces one `CommModel` per
/// communicator).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommModel {
    /// Link parameters used between ring/tree neighbours.
    pub link: LinkParams,
    /// Collective algorithm policy.
    pub algorithm: CollectiveAlgorithm,
    /// Contention penalty coefficient φ ≥ 1 applied to the bandwidth term.
    pub contention: f64,
}

impl CommModel {
    /// A model with no contention and the default (auto) algorithm.
    pub fn new(link: LinkParams) -> Self {
        CommModel { link, algorithm: CollectiveAlgorithm::default(), contention: 1.0 }
    }

    /// Sets the contention penalty coefficient φ.
    pub fn with_contention(mut self, phi: f64) -> Self {
        self.contention = phi.max(1.0);
        self
    }

    /// Sets the collective algorithm policy.
    pub fn with_algorithm(mut self, algorithm: CollectiveAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    fn effective_link(&self) -> LinkParams {
        self.link.with_contention(self.contention)
    }

    /// Peer-to-peer transfer time `T_p2p(m) = α + m·β` for `bytes` bytes.
    pub fn p2p(&self, bytes: f64) -> f64 {
        self.effective_link().p2p_time(bytes)
    }

    fn resolve(&self, bytes: f64) -> CollectiveAlgorithm {
        match self.algorithm {
            CollectiveAlgorithm::Auto { threshold_bytes } => {
                if bytes < threshold_bytes as f64 {
                    CollectiveAlgorithm::Tree { chunks: 4 }
                } else {
                    CollectiveAlgorithm::Ring
                }
            }
            other => other,
        }
    }

    /// Allreduce time `T_ar(p, m)` for a buffer of `bytes` bytes over `p` PEs.
    ///
    /// Ring: `2(p−1)(α + (m/p)·β)`. Tree: `2(log2 p + k)(α + (m/2k)·β)`.
    pub fn allreduce(&self, p: usize, bytes: f64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let link = self.effective_link();
        match self.resolve(bytes) {
            CollectiveAlgorithm::Ring => {
                2.0 * (p as f64 - 1.0) * (link.alpha + bytes / p as f64 * link.beta)
            }
            CollectiveAlgorithm::Tree { chunks } => {
                let k = chunks.max(1) as f64;
                2.0 * ((p as f64).log2() + k) * (link.alpha + bytes / (2.0 * k) * link.beta)
            }
            CollectiveAlgorithm::Auto { .. } => unreachable!("resolved above"),
        }
    }

    /// Allgather time `T_ag(p, m)` where `bytes` is the **total** gathered
    /// buffer size: `(p−1)(α + (m/p)·β)` in the ring algorithm (each PE
    /// contributes `m/p` bytes and the result is `m` bytes everywhere).
    pub fn allgather(&self, p: usize, bytes: f64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let link = self.effective_link();
        match self.resolve(bytes) {
            CollectiveAlgorithm::Ring | CollectiveAlgorithm::Auto { .. } => {
                (p as f64 - 1.0) * (link.alpha + bytes / p as f64 * link.beta)
            }
            CollectiveAlgorithm::Tree { chunks } => {
                let k = chunks.max(1) as f64;
                ((p as f64).log2() + k) * (link.alpha + bytes / (2.0 * k) * link.beta)
            }
        }
    }

    /// Reduce-scatter time: `(p−1)(α + (m/p)·β)` in the ring algorithm.
    pub fn reduce_scatter(&self, p: usize, bytes: f64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let link = self.effective_link();
        (p as f64 - 1.0) * (link.alpha + bytes / p as f64 * link.beta)
    }

    /// Broadcast time with a binomial tree: `⌈log2 p⌉ (α + m·β)`.
    pub fn broadcast(&self, p: usize, bytes: f64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let link = self.effective_link();
        (p as f64).log2().ceil() * (link.alpha + bytes * link.beta)
    }

    /// Scatter time from one root: `(p−1)/p · m·β + ⌈log2 p⌉·α` (tree scatter
    /// of a `m`-byte buffer partitioned into `p` pieces).
    pub fn scatter(&self, p: usize, bytes: f64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let link = self.effective_link();
        (p as f64).log2().ceil() * link.alpha + (p as f64 - 1.0) / p as f64 * bytes * link.beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_model() -> CommModel {
        CommModel::new(LinkParams { alpha: 1e-5, beta: 1e-9 })
            .with_algorithm(CollectiveAlgorithm::Ring)
    }

    #[test]
    fn p2p_is_alpha_beta() {
        let m = ring_model();
        let t = m.p2p(1e6);
        assert!((t - (1e-5 + 1e6 * 1e-9)).abs() < 1e-15);
    }

    #[test]
    fn ring_allreduce_matches_formula() {
        let m = ring_model();
        let p = 8;
        let bytes = 1024.0 * 1024.0;
        let expected = 2.0 * 7.0 * (1e-5 + bytes / 8.0 * 1e-9);
        assert!((m.allreduce(p, bytes) - expected).abs() < 1e-12);
    }

    #[test]
    fn ring_allgather_matches_formula() {
        let m = ring_model();
        let p = 4;
        let bytes = 4096.0;
        let expected = 3.0 * (1e-5 + bytes / 4.0 * 1e-9);
        assert!((m.allgather(p, bytes) - expected).abs() < 1e-12);
    }

    #[test]
    fn single_pe_collectives_are_free() {
        let m = ring_model();
        assert_eq!(m.allreduce(1, 1e9), 0.0);
        assert_eq!(m.allgather(1, 1e9), 0.0);
        assert_eq!(m.broadcast(1, 1e9), 0.0);
        assert_eq!(m.reduce_scatter(1, 1e9), 0.0);
    }

    #[test]
    fn contention_scales_bandwidth_term_only() {
        let base = ring_model();
        let contended = ring_model().with_contention(2.0);
        let bytes = 1e8;
        let p = 16;
        let t0 = base.allreduce(p, bytes);
        let t1 = contended.allreduce(p, bytes);
        assert!(t1 > t0);
        // The alpha part is unchanged; the beta part doubles.
        let alpha_part = 2.0 * 15.0 * 1e-5;
        assert!(((t1 - alpha_part) / (t0 - alpha_part) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn contention_below_one_is_clamped() {
        let m = CommModel::new(LinkParams { alpha: 0.0, beta: 1e-9 }).with_contention(0.1);
        assert_eq!(m.contention, 1.0);
    }

    #[test]
    fn auto_switches_between_tree_and_ring() {
        let m = CommModel::new(LinkParams { alpha: 1e-5, beta: 1e-9 });
        // Small message: tree (latency-dominated) should beat a hypothetical ring
        // with many PEs.
        let small = 1024.0;
        let large = 100e6;
        let p = 256;
        let ring = CommModel::new(LinkParams { alpha: 1e-5, beta: 1e-9 })
            .with_algorithm(CollectiveAlgorithm::Ring);
        assert!(m.allreduce(p, small) < ring.allreduce(p, small));
        // Large message: auto picks ring and matches it exactly.
        assert!((m.allreduce(p, large) - ring.allreduce(p, large)).abs() < 1e-12);
    }

    #[test]
    fn allreduce_monotone_in_message_size_and_pes() {
        let m = ring_model();
        assert!(m.allreduce(8, 2e6) > m.allreduce(8, 1e6));
        assert!(m.allreduce(16, 1e6) > m.allreduce(8, 1e6));
    }

    #[test]
    fn link_presets_are_sane() {
        assert!(LinkParams::nvlink().beta < LinkParams::infiniband_edr().beta);
        assert!(LinkParams::infiniband_oversubscribed().beta > LinkParams::infiniband_edr().beta);
    }
}
