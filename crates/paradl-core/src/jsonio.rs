//! Minimal self-contained JSON value type, parser and renderer.
//!
//! The offline workspace has no `serde`, so everything that speaks JSON —
//! the golden-fixture corpus in `tests/golden_search.rs`, the
//! `BENCH_*.json` summaries, and the `paradl-serve` wire protocol — shares
//! this one implementation instead of growing per-binary emitters.
//!
//! Design points:
//!
//! * **Deterministic bytes.** Objects are ordered `Vec`s (insertion order is
//!   preserved, never re-sorted), so rendering the same value twice produces
//!   byte-identical output — which is what lets the serve integration tests
//!   compare served answers against locally computed ones *as bytes*.
//! * **Shortest-round-trip floats.** Numbers render with Rust's `Display`
//!   for `f64`, the shortest decimal that reparses to the same bits. Blessed
//!   fixtures and wire frames therefore survive a parse→render cycle
//!   bit-exactly; tolerances in tests only absorb arithmetic drift, not
//!   serialization loss.
//! * **Non-panicking parse.** [`Json::parse`] returns a [`JsonError`] with a
//!   byte offset instead of panicking, so a daemon can reject a malformed
//!   frame without dying. The panicking accessors ([`Json::req`],
//!   [`Json::as_str`], …) are sugar for tests and fixtures where a schema
//!   mismatch *should* abort loudly.

use std::fmt;

/// A parsed JSON value. Object fields keep their insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// An object: ordered key/value pairs.
    Obj(Vec<(String, Json)>),
    /// An array.
    Arr(Vec<Json>),
    /// A string.
    Str(String),
    /// A number (JSON numbers are parsed as `f64`).
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

/// Maximum container nesting [`Json::parse`] accepts. Real query/answer
/// documents nest fewer than 10 levels; the limit exists so a hostile frame
/// of unbounded `[[[…` returns a [`JsonError`] instead of overflowing the
/// parser's recursion stack (an uncatchable abort).
pub const MAX_PARSE_DEPTH: usize = 128;

/// A parse error: what went wrong and the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset into the input where the problem was detected.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    // -- construction sugar -------------------------------------------------

    /// An object from key/value pairs (insertion order is preserved).
    pub fn obj(fields: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number from anything convertible to `f64` losslessly enough for the
    /// caller (counts in this workspace stay far below 2^53).
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// A number from a `usize` count.
    pub fn count(n: usize) -> Json {
        Json::Num(n as f64)
    }

    // -- non-panicking accessors -------------------------------------------

    /// Field `key` of an object (`None` for missing keys and non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn string(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn number(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn fields(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn boolean(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// The number as a non-negative integer count (`None` when missing,
    /// non-numeric, negative, or not an integer).
    pub fn usize(&self) -> Option<usize> {
        let n = self.number()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= usize::MAX as f64 {
            Some(n as usize)
        } else {
            None
        }
    }

    // -- panicking accessors (tests / fixtures) -----------------------------

    /// Field `key` of an object; panics with a readable message when the key
    /// is missing or `self` is not an object. Test/fixture sugar.
    pub fn req(&self, key: &str) -> &Json {
        match self {
            Json::Obj(_) => {
                self.get(key).unwrap_or_else(|| panic!("missing key {key:?} in {self:?}"))
            }
            other => panic!("expected object with key {key:?}, got {other:?}"),
        }
    }

    /// The string payload; panics on type mismatch. Test/fixture sugar.
    pub fn as_str(&self) -> &str {
        self.string().unwrap_or_else(|| panic!("expected string, got {self:?}"))
    }

    /// The numeric payload; panics on type mismatch. Test/fixture sugar.
    pub fn as_num(&self) -> f64 {
        self.number().unwrap_or_else(|| panic!("expected number, got {self:?}"))
    }

    /// The elements; panics on type mismatch. Test/fixture sugar.
    pub fn as_arr(&self) -> &[Json] {
        self.array().unwrap_or_else(|| panic!("expected array, got {self:?}"))
    }

    // -- parse / render -----------------------------------------------------

    /// Parses a JSON document. Never panics: malformed input (including
    /// truncated documents, bad escapes and trailing garbage) yields a
    /// [`JsonError`] with the offending byte offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content"));
        }
        Ok(value)
    }

    /// Renders compactly (no whitespace), deterministically: object fields in
    /// insertion order, floats in shortest-round-trip form. Non-finite
    /// numbers (which JSON cannot express) render as `null`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Renders human-readably with 2-space indentation. Containers whose
    /// children are all scalars stay on one line (`{"a": 1, "b": 2}`), which
    /// is the layout the golden fixtures use for ranking entries; containers
    /// with nested containers get one field per line.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn is_container(&self) -> bool {
        matches!(self, Json::Obj(_) | Json::Arr(_))
    }

    /// Whether any direct child is itself a container (forces the multi-line
    /// pretty layout).
    fn has_container_child(&self) -> bool {
        match self {
            Json::Obj(fields) => fields.iter().any(|(_, v)| v.is_container()),
            Json::Arr(items) => items.iter().any(Json::is_container),
            _ => false,
        }
    }

    fn write_scalar(&self, out: &mut String) {
        match self {
            Json::Str(s) => write_escaped(out, s),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Null => out.push_str("null"),
            Json::Obj(_) | Json::Arr(_) => unreachable!("containers handled by callers"),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            scalar => scalar.write_scalar(out),
        }
    }

    /// One-line layout with spaces (`{"a": 1, "b": 2}` / `[1, 2]`), used for
    /// leaf containers in the pretty renderer.
    fn write_inline(&self, out: &mut String) {
        match self {
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_inline(out);
                }
                out.push('}');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    v.write_inline(out);
                }
                out.push(']');
            }
            scalar => scalar.write_scalar(out),
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        if !self.has_container_child() {
            self.write_inline(out);
            return;
        }
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    v.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            _ => unreachable!("scalars have no container children"),
        }
    }
}

/// Writes `s` as a quoted JSON string, escaping quotes, backslashes and
/// control characters.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { message: message.into(), at: self.pos }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn peek(&mut self) -> Result<u8, JsonError> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| self.err("unexpected end of input"))
    }

    /// Consumes a literal keyword (`true`/`false`/`null`).
    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        // The parser recurses per nesting level, so a hostile frame of
        // 100k opening brackets would otherwise ride the recursion straight
        // into a stack overflow — an abort, not a catchable error. Depth is
        // bounded well above anything a real query or answer document
        // nests (< 10 levels).
        if depth >= MAX_PARSE_DEPTH {
            return Err(self.err(format!("nesting exceeds {MAX_PARSE_DEPTH} levels")));
        }
        match self.peek()? {
            b'{' => self.object(depth),
            b'[' => self.array(depth),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.keyword("true", Json::Bool(true)),
            b'f' => self.keyword("false", Json::Bool(false)),
            b'n' => self.keyword("null", Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value(depth + 1)?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(self.err(format!("expected ',' or '}}', got {:?}", other as char)))
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(self.err(format!("expected ',' or ']', got {:?}", other as char)))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(self.err(format!("bad escape \\{}", other as char)));
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // byte stream is valid UTF-8; continuation bytes follow).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    /// A `\uXXXX` escape, combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("bad surrogate pair"));
                }
            }
            return Err(self.err("lone surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        let Some(text) = self.bytes.get(self.pos..end) else {
            return Err(self.err("truncated \\u escape"));
        };
        let text = std::str::from_utf8(text).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        match text.parse::<f64>() {
            // Reject overflowing exponents (`1e999` parses to Inf): a
            // non-finite literal must never reach a query field. Renders of
            // non-finite values emit `null`, so round-trips stay closed.
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            Ok(n) => Err(JsonError {
                message: format!("non-finite number {text:?} (parses to {n})"),
                at: start,
            }),
            Err(_) => Err(JsonError { message: format!("bad number {text:?}"), at: start }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_renders_all_value_kinds() {
        let text = r#"{"s": "hi", "n": 1.5, "i": 42, "b": true, "no": false, "z": null, "a": [1, 2], "o": {"k": "v"}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.req("s").as_str(), "hi");
        assert_eq!(v.req("n").as_num(), 1.5);
        assert_eq!(v.req("i").usize(), Some(42));
        assert_eq!(v.req("b").boolean(), Some(true));
        assert_eq!(v.req("no").boolean(), Some(false));
        assert!(v.req("z").is_null());
        assert_eq!(v.req("a").as_arr().len(), 2);
        assert_eq!(v.req("o").req("k").as_str(), "v");
        // Compact render round-trips to the same value.
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        // Pretty render too.
        assert_eq!(Json::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for x in [0.0, 1.0, -1.5, 1.0 / 3.0, 6.02e23, 1e-300, f64::MAX, 5e-324] {
            let rendered = Json::Num(x).render();
            let back = Json::parse(&rendered).unwrap().as_num();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} rendered as {rendered}");
        }
        // Non-finite values cannot be expressed in JSON: they render as null.
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in
            ["plain", "with \"quotes\"", "back\\slash", "tab\tnl\n", "unicode é λ 💡", "ctrl\u{1}"]
        {
            let rendered = Json::str(s).render();
            assert_eq!(Json::parse(&rendered).unwrap().as_str(), s, "via {rendered}");
        }
        // Standard escapes parse.
        assert_eq!(Json::parse(r#""\u0041\u00e9\ud83d\udca1\/""#).unwrap().as_str(), "Aé💡/");
    }

    #[test]
    fn malformed_input_errors_instead_of_panicking() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"a\": }",
            "\"unterminated",
            "{\"a\": 1} trailing",
            "nul",
            "truely",
            "1.2.3",
            "{\"a\" 1}",
            "[1 2]",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "--5",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail to parse");
        }
    }

    #[test]
    fn overflowing_exponents_are_a_parse_error_not_an_inf() {
        for bad in ["1e999", "-1e999", "1e400", "[1e309]", "{\"beta\": -1.5e999}"] {
            let err = Json::parse(bad).expect_err(&format!("{bad:?} must not parse"));
            assert!(err.message.contains("non-finite"), "{bad:?}: {}", err.message);
        }
        // The largest finite doubles still parse.
        for good in ["1e308", "-1.7976931348623157e308", "1e-999"] {
            let v = Json::parse(good).expect(good);
            assert!(v.as_num().is_finite(), "{good:?} should stay finite");
        }
    }

    #[test]
    fn hostile_nesting_errors_instead_of_overflowing_the_stack() {
        // 100k nested arrays: without the depth limit this rides the
        // parser's recursion into a stack overflow (process abort). With
        // it, a plain JsonError.
        for (open, close) in [("[", "]"), ("{\"k\":", "}")] {
            let hostile = format!("{}0{}", open.repeat(100_000), close.repeat(100_000));
            let err = Json::parse(&hostile).expect_err("hostile nesting must not parse");
            assert!(err.message.contains("nesting exceeds"), "{err}");
        }
        // Sane nesting short of the limit still parses.
        let deep =
            format!("{}0{}", "[".repeat(MAX_PARSE_DEPTH - 1), "]".repeat(MAX_PARSE_DEPTH - 1));
        assert!(Json::parse(&deep).is_ok());
        // And exactly at the limit fails (the boundary is pinned).
        let at_limit =
            format!("{}0{}", "[".repeat(MAX_PARSE_DEPTH + 1), "]".repeat(MAX_PARSE_DEPTH + 1));
        assert!(Json::parse(&at_limit).is_err());
    }

    #[test]
    fn object_field_order_is_preserved() {
        let v = Json::obj([("z", Json::count(1)), ("a", Json::count(2))]);
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
        let parsed = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        assert_eq!(parsed, v);
        // Deterministic: two renders of the same value are byte-identical.
        assert_eq!(parsed.render(), parsed.render());
    }

    #[test]
    fn pretty_layout_inlines_leaf_containers() {
        let v = Json::obj([
            ("model", Json::str("m")),
            (
                "cells",
                Json::Arr(vec![Json::obj([
                    ("batch", Json::count(256)),
                    (
                        "top",
                        Json::Arr(vec![Json::obj([
                            ("strategy", Json::str("data(p=64)")),
                            ("pes", Json::count(64)),
                        ])]),
                    ),
                ])]),
            ),
        ]);
        let expected = "{\n  \"model\": \"m\",\n  \"cells\": [\n    {\n      \"batch\": 256,\n      \"top\": [\n        {\"strategy\": \"data(p=64)\", \"pes\": 64}\n      ]\n    }\n  ]\n}";
        assert_eq!(v.render_pretty(), expected);
    }

    #[test]
    fn non_object_accessors_return_none() {
        let v = Json::parse("[1]").unwrap();
        assert!(v.get("x").is_none());
        assert!(v.string().is_none());
        assert!(v.number().is_none());
        assert!(v.fields().is_none());
        assert_eq!(Json::Num(-1.0).usize(), None);
        assert_eq!(Json::Num(1.5).usize(), None);
        assert_eq!(Json::Num(7.0).usize(), Some(7));
    }
}
