//! Golden-fixture snapshot tests: the standing regression corpus of the
//! oracle's rankings.
//!
//! For every bundled Table-5 model, `tests/fixtures/golden_<model>.json`
//! pins the top-10 of the `SearchReport` at each (global batch × cluster)
//! cell of a fixed grid — the strategy ranking, projected epoch times and
//! per-PE memory, plus the enumeration/pruning counters. The test fails on
//! *any* ranking change and on any cost drift beyond a relative 1e-9, so an
//! unintended change anywhere in the cost model, engine, enumeration or
//! sweep machinery surfaces as a readable fixture diff.
//!
//! When a change is intentional, re-bless the fixtures with
//!
//! ```bash
//! PARADL_BLESS=1 cargo test -q --test golden_search
//! ```
//!
//! and commit the rewritten JSON files (the diff *is* the review artifact).
//!
//! The fixtures are written and read with the shared `paradl_core::jsonio`
//! emitter/parser (the offline workspace has no serde); floats are
//! serialized with Rust's shortest-round-trip `Display`, so blessed values
//! reparse bit-exactly and the 1e-9 tolerance only absorbs genuine
//! arithmetic drift, not serialization loss.

use paradl::prelude::*;
use std::path::PathBuf;

/// Relative drift tolerance for projected costs and memory.
const TOLERANCE: f64 = 1e-9;
/// Ranking depth pinned per cell.
const TOP: usize = 10;

/// The fixture grid: every bundled model × these batches × these clusters,
/// searched under the paper's powers-of-two sweep with top-10 ranking.
const BATCHES: [usize; 2] = [256, 1024];

fn clusters() -> Vec<(&'static str, ClusterSpec)> {
    vec![("paper", ClusterSpec::paper_system()), ("workstation8", ClusterSpec::workstation(8))]
}

fn constraints() -> Constraints {
    Constraints { max_pes: 1024, top_k: Some(TOP), ..Constraints::default() }
}

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures")
}

fn slug(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
        .collect()
}

fn base_config(model: &Model, batch: usize) -> TrainingConfig {
    if model.name.starts_with("CosmoFlow") {
        TrainingConfig::cosmoflow(batch)
    } else {
        TrainingConfig::imagenet(batch)
    }
}

/// Sweeps one model over the fixture grid and returns
/// `(batch, cluster_name, report)` per cell.
fn sweep_model(model: &Model) -> Vec<(usize, String, SearchReport)> {
    let mut grid = QueryGrid::new(constraints())
        .with_model(model.clone(), base_config(model, BATCHES[0]))
        .with_batches(BATCHES);
    let names: Vec<String> = clusters().iter().map(|(n, _)| n.to_string()).collect();
    for (_, cluster) in clusters() {
        grid = grid.with_cluster(cluster);
    }
    GridSweep::new()
        .run(&grid)
        .cells
        .into_iter()
        .map(|cell| (cell.query.batch, names[cell.query.cluster].clone(), cell.report))
        .collect()
}

// ---------------------------------------------------------------------------
// Fixture serialization (via the shared `jsonio` pretty renderer, whose
// leaf-container inlining reproduces the blessed fixture layout byte for
// byte).
// ---------------------------------------------------------------------------

fn fixture_tree(model: &Model, cells: &[(usize, String, SearchReport)]) -> Json {
    let cell_values: Vec<Json> = cells
        .iter()
        .map(|(batch, cluster, report)| {
            let top: Vec<Json> = report
                .top(TOP)
                .iter()
                .map(|c| {
                    Json::obj([
                        ("strategy", Json::str(c.strategy.to_string())),
                        ("pes", Json::count(c.strategy.total_pes())),
                        ("epoch_time", Json::num(c.projection.cost.epoch_time())),
                        ("memory_per_pe", Json::num(c.projection.cost.memory_per_pe_bytes)),
                    ])
                })
                .collect();
            Json::obj([
                ("batch", Json::count(*batch)),
                ("cluster", Json::str(cluster.clone())),
                ("enumerated", Json::count(report.enumerated)),
                ("pruned_by_memory", Json::count(report.pruned_by_memory)),
                ("top", Json::Arr(top)),
            ])
        })
        .collect();
    Json::obj([("model", Json::str(model.name.clone())), ("cells", Json::Arr(cell_values))])
}

fn render_fixture(model: &Model, cells: &[(usize, String, SearchReport)]) -> String {
    let mut out = fixture_tree(model, cells).render_pretty();
    out.push('\n');
    out
}

// ---------------------------------------------------------------------------
// The snapshot test.
// ---------------------------------------------------------------------------

fn relative_drift(current: f64, blessed: f64) -> f64 {
    if blessed == 0.0 {
        current.abs()
    } else {
        (current - blessed).abs() / blessed.abs()
    }
}

#[test]
fn golden_rankings_have_not_drifted() {
    let bless = std::env::var_os("PARADL_BLESS").is_some();
    let dir = fixture_dir();
    if bless {
        std::fs::create_dir_all(&dir).expect("create fixture dir");
    }

    for model in paradl::models::paper_models() {
        let cells = sweep_model(&model);
        let path = dir.join(format!("golden_{}.json", slug(&model.name)));

        if bless {
            std::fs::write(&path, render_fixture(&model, &cells))
                .unwrap_or_else(|e| panic!("bless {}: {e}", path.display()));
            println!("blessed {}", path.display());
            continue;
        }

        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} ({e}); run `PARADL_BLESS=1 cargo test -q --test \
                 golden_search` to create it",
                path.display()
            )
        });
        let fixture = Json::parse(&text)
            .unwrap_or_else(|e| panic!("{}: malformed fixture: {e}", path.display()));
        assert_eq!(fixture.req("model").as_str(), model.name, "{}", path.display());

        let blessed_cells = fixture.req("cells").as_arr();
        assert_eq!(
            blessed_cells.len(),
            cells.len(),
            "{}: cell count changed (grid definition drifted?)",
            path.display()
        );
        for (blessed, (batch, cluster, report)) in blessed_cells.iter().zip(&cells) {
            let at = format!("{} B={batch} cluster={cluster}", model.name);
            assert_eq!(blessed.req("batch").as_num() as usize, *batch, "{at}: cell order");
            assert_eq!(blessed.req("cluster").as_str(), cluster, "{at}: cell order");
            assert_eq!(
                blessed.req("enumerated").as_num() as usize,
                report.enumerated,
                "{at}: enumeration count drifted"
            );
            assert_eq!(
                blessed.req("pruned_by_memory").as_num() as usize,
                report.pruned_by_memory,
                "{at}: memory-pruning count drifted"
            );
            let top = report.top(TOP);
            let blessed_top = blessed.req("top").as_arr();
            assert_eq!(blessed_top.len(), top.len(), "{at}: ranking length drifted");
            for (rank, (b, c)) in blessed_top.iter().zip(top).enumerate() {
                assert_eq!(
                    b.req("strategy").as_str(),
                    c.strategy.to_string(),
                    "{at}: ranking drifted at position {rank}"
                );
                let time_drift =
                    relative_drift(c.projection.cost.epoch_time(), b.req("epoch_time").as_num());
                assert!(
                    time_drift <= TOLERANCE,
                    "{at}: epoch time of {} drifted by {time_drift:e} (> {TOLERANCE:e})",
                    c.strategy
                );
                let mem_drift = relative_drift(
                    c.projection.cost.memory_per_pe_bytes,
                    b.req("memory_per_pe").as_num(),
                );
                assert!(
                    mem_drift <= TOLERANCE,
                    "{at}: per-PE memory of {} drifted by {mem_drift:e} (> {TOLERANCE:e})",
                    c.strategy
                );
            }
        }
    }
}

#[test]
fn fixture_parser_round_trips_the_emitter() {
    // Self-check of the test plumbing: a rendered fixture parses back into
    // the values it was rendered from (shortest-round-trip floats).
    let model = paradl::models::cosmoflow();
    let cells = sweep_model(&model);
    let parsed = Json::parse(&render_fixture(&model, &cells)).expect("rendered fixture parses");
    assert_eq!(parsed.req("model").as_str(), model.name);
    let parsed_cells = parsed.req("cells").as_arr();
    assert_eq!(parsed_cells.len(), cells.len());
    for (blessed, (_, _, report)) in parsed_cells.iter().zip(&cells) {
        for (b, c) in blessed.req("top").as_arr().iter().zip(report.top(TOP)) {
            assert_eq!(b.req("strategy").as_str(), c.strategy.to_string());
            assert_eq!(b.req("epoch_time").as_num(), c.projection.cost.epoch_time());
            assert_eq!(b.req("memory_per_pe").as_num(), c.projection.cost.memory_per_pe_bytes);
        }
    }
}
