//! Golden-fixture snapshot tests: the standing regression corpus of the
//! oracle's rankings.
//!
//! For every bundled Table-5 model, `tests/fixtures/golden_<model>.json`
//! pins the top-10 of the `SearchReport` at each (global batch × cluster)
//! cell of a fixed grid — the strategy ranking, projected epoch times and
//! per-PE memory, plus the enumeration/pruning counters. The test fails on
//! *any* ranking change and on any cost drift beyond a relative 1e-9, so an
//! unintended change anywhere in the cost model, engine, enumeration or
//! sweep machinery surfaces as a readable fixture diff.
//!
//! When a change is intentional, re-bless the fixtures with
//!
//! ```bash
//! PARADL_BLESS=1 cargo test -q --test golden_search
//! ```
//!
//! and commit the rewritten JSON files (the diff *is* the review artifact).
//!
//! The fixtures are written and read with a self-contained JSON
//! emitter/parser below (the offline workspace has no serde); floats are
//! serialized with Rust's shortest-round-trip `Display`, so blessed values
//! reparse bit-exactly and the 1e-9 tolerance only absorbs genuine
//! arithmetic drift, not serialization loss.

use paradl::prelude::*;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Relative drift tolerance for projected costs and memory.
const TOLERANCE: f64 = 1e-9;
/// Ranking depth pinned per cell.
const TOP: usize = 10;

/// The fixture grid: every bundled model × these batches × these clusters,
/// searched under the paper's powers-of-two sweep with top-10 ranking.
const BATCHES: [usize; 2] = [256, 1024];

fn clusters() -> Vec<(&'static str, ClusterSpec)> {
    vec![("paper", ClusterSpec::paper_system()), ("workstation8", ClusterSpec::workstation(8))]
}

fn constraints() -> Constraints {
    Constraints { max_pes: 1024, top_k: Some(TOP), ..Constraints::default() }
}

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures")
}

fn slug(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
        .collect()
}

fn base_config(model: &Model, batch: usize) -> TrainingConfig {
    if model.name.starts_with("CosmoFlow") {
        TrainingConfig::cosmoflow(batch)
    } else {
        TrainingConfig::imagenet(batch)
    }
}

/// Sweeps one model over the fixture grid and returns
/// `(batch, cluster_name, report)` per cell.
fn sweep_model(model: &Model) -> Vec<(usize, String, SearchReport)> {
    let mut grid = QueryGrid::new(constraints())
        .with_model(model.clone(), base_config(model, BATCHES[0]))
        .with_batches(BATCHES);
    let names: Vec<String> = clusters().iter().map(|(n, _)| n.to_string()).collect();
    for (_, cluster) in clusters() {
        grid = grid.with_cluster(cluster);
    }
    GridSweep::new()
        .run(&grid)
        .cells
        .into_iter()
        .map(|cell| (cell.query.batch, names[cell.query.cluster].clone(), cell.report))
        .collect()
}

// ---------------------------------------------------------------------------
// Fixture serialization.
// ---------------------------------------------------------------------------

fn render_fixture(model: &Model, cells: &[(usize, String, SearchReport)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"model\": \"{}\",", model.name);
    let _ = writeln!(out, "  \"cells\": [");
    for (i, (batch, cluster, report)) in cells.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"batch\": {batch},");
        let _ = writeln!(out, "      \"cluster\": \"{cluster}\",");
        let _ = writeln!(out, "      \"enumerated\": {},", report.enumerated);
        let _ = writeln!(out, "      \"pruned_by_memory\": {},", report.pruned_by_memory);
        let _ = writeln!(out, "      \"top\": [");
        let top = report.top(TOP);
        for (j, c) in top.iter().enumerate() {
            let comma = if j + 1 < top.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "        {{\"strategy\": \"{}\", \"pes\": {}, \"epoch_time\": {}, \"memory_per_pe\": {}}}{comma}",
                c.strategy,
                c.strategy.total_pes(),
                c.projection.cost.epoch_time(),
                c.projection.cost.memory_per_pe_bytes
            );
        }
        let _ = writeln!(out, "      ]");
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (objects, arrays, strings, numbers — the subset the
// fixtures use).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    Num(f64),
}

impl Json {
    fn get(&self, key: &str) -> &Json {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("fixture missing key {key:?}")),
            other => panic!("expected object with key {key:?}, got {other:?}"),
        }
    }

    fn arr(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            other => panic!("expected array, got {other:?}"),
        }
    }

    fn str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }

    fn num(&self) -> f64 {
        match self {
            Json::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Json {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let value = p.value();
        p.skip_ws();
        assert!(p.pos == p.bytes.len(), "trailing fixture content at byte {}", p.pos);
        value
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) {
        self.skip_ws();
        assert!(
            self.bytes.get(self.pos) == Some(&b),
            "expected {:?} at byte {}",
            b as char,
            self.pos
        );
        self.pos += 1;
    }

    fn peek(&mut self) -> u8 {
        self.skip_ws();
        *self.bytes.get(self.pos).expect("unexpected end of fixture")
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Json {
        self.expect(b'{');
        let mut fields = Vec::new();
        if self.peek() == b'}' {
            self.pos += 1;
            return Json::Obj(fields);
        }
        loop {
            let key = self.string();
            self.expect(b':');
            fields.push((key, self.value()));
            match self.peek() {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Json::Obj(fields);
                }
                other => panic!("expected ',' or '}}', got {:?}", other as char),
            }
        }
    }

    fn array(&mut self) -> Json {
        self.expect(b'[');
        let mut items = Vec::new();
        if self.peek() == b']' {
            self.pos += 1;
            return Json::Arr(items);
        }
        loop {
            items.push(self.value());
            match self.peek() {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Json::Arr(items);
                }
                other => panic!("expected ',' or ']', got {:?}", other as char),
            }
        }
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let start = self.pos;
        while self.bytes[self.pos] != b'"' {
            assert!(self.bytes[self.pos] != b'\\', "fixture strings are escape-free");
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8").to_string();
        self.pos += 1;
        s
    }

    fn number(&mut self) -> Json {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8");
        Json::Num(text.parse().unwrap_or_else(|_| panic!("bad number {text:?}")))
    }
}

// ---------------------------------------------------------------------------
// The snapshot test.
// ---------------------------------------------------------------------------

fn relative_drift(current: f64, blessed: f64) -> f64 {
    if blessed == 0.0 {
        current.abs()
    } else {
        (current - blessed).abs() / blessed.abs()
    }
}

#[test]
fn golden_rankings_have_not_drifted() {
    let bless = std::env::var_os("PARADL_BLESS").is_some();
    let dir = fixture_dir();
    if bless {
        std::fs::create_dir_all(&dir).expect("create fixture dir");
    }

    for model in paradl::models::paper_models() {
        let cells = sweep_model(&model);
        let path = dir.join(format!("golden_{}.json", slug(&model.name)));

        if bless {
            std::fs::write(&path, render_fixture(&model, &cells))
                .unwrap_or_else(|e| panic!("bless {}: {e}", path.display()));
            println!("blessed {}", path.display());
            continue;
        }

        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} ({e}); run `PARADL_BLESS=1 cargo test -q --test \
                 golden_search` to create it",
                path.display()
            )
        });
        let fixture = Parser::parse(&text);
        assert_eq!(fixture.get("model").str(), model.name, "{}", path.display());

        let blessed_cells = fixture.get("cells").arr();
        assert_eq!(
            blessed_cells.len(),
            cells.len(),
            "{}: cell count changed (grid definition drifted?)",
            path.display()
        );
        for (blessed, (batch, cluster, report)) in blessed_cells.iter().zip(&cells) {
            let at = format!("{} B={batch} cluster={cluster}", model.name);
            assert_eq!(blessed.get("batch").num() as usize, *batch, "{at}: cell order");
            assert_eq!(blessed.get("cluster").str(), cluster, "{at}: cell order");
            assert_eq!(
                blessed.get("enumerated").num() as usize,
                report.enumerated,
                "{at}: enumeration count drifted"
            );
            assert_eq!(
                blessed.get("pruned_by_memory").num() as usize,
                report.pruned_by_memory,
                "{at}: memory-pruning count drifted"
            );
            let top = report.top(TOP);
            let blessed_top = blessed.get("top").arr();
            assert_eq!(blessed_top.len(), top.len(), "{at}: ranking length drifted");
            for (rank, (b, c)) in blessed_top.iter().zip(top).enumerate() {
                assert_eq!(
                    b.get("strategy").str(),
                    c.strategy.to_string(),
                    "{at}: ranking drifted at position {rank}"
                );
                let time_drift =
                    relative_drift(c.projection.cost.epoch_time(), b.get("epoch_time").num());
                assert!(
                    time_drift <= TOLERANCE,
                    "{at}: epoch time of {} drifted by {time_drift:e} (> {TOLERANCE:e})",
                    c.strategy
                );
                let mem_drift = relative_drift(
                    c.projection.cost.memory_per_pe_bytes,
                    b.get("memory_per_pe").num(),
                );
                assert!(
                    mem_drift <= TOLERANCE,
                    "{at}: per-PE memory of {} drifted by {mem_drift:e} (> {TOLERANCE:e})",
                    c.strategy
                );
            }
        }
    }
}

#[test]
fn fixture_parser_round_trips_the_emitter() {
    // Self-check of the test plumbing: a rendered fixture parses back into
    // the values it was rendered from (shortest-round-trip floats).
    let model = paradl::models::cosmoflow();
    let cells = sweep_model(&model);
    let parsed = Parser::parse(&render_fixture(&model, &cells));
    assert_eq!(parsed.get("model").str(), model.name);
    let parsed_cells = parsed.get("cells").arr();
    assert_eq!(parsed_cells.len(), cells.len());
    for (blessed, (_, _, report)) in parsed_cells.iter().zip(&cells) {
        for (b, c) in blessed.get("top").arr().iter().zip(report.top(TOP)) {
            assert_eq!(b.get("strategy").str(), c.strategy.to_string());
            assert_eq!(b.get("epoch_time").num(), c.projection.cost.epoch_time());
            assert_eq!(b.get("memory_per_pe").num(), c.projection.cost.memory_per_pe_bytes);
        }
    }
}
