//! Workspace-level equivalence tests for the unified Query API.
//!
//! `Oracle::answer` is the canonical entry point; these tests pin it to the
//! historical role methods (`suggest`, `search`, `survey`) and pin the
//! standalone `Query::run` to a hand-built oracle — through rendered JSON,
//! the same representation the wire protocol and golden fixtures use.

use paradl::prelude::*;

fn workload() -> (Model, ClusterSpec, TrainingConfig) {
    let model = paradl::models::alexnet();
    let cluster = ClusterSpec::workstation(8);
    let config = TrainingConfig::imagenet(256);
    (model, cluster, config)
}

fn constraints() -> Constraints {
    Constraints { max_pes: 256, ..Constraints::default() }
}

fn render(answer: &QueryAnswer) -> String {
    answer.to_json().render()
}

#[test]
fn answer_matches_the_legacy_role_methods() {
    let (model, cluster, config) = workload();
    let oracle = Oracle::new(&model, &cluster.device, &cluster, config);

    // Suggest ≡ Oracle::suggest.
    let suggest = Query::default().with_constraints(constraints()).with_mode(QueryMode::Suggest);
    assert_eq!(
        render(&oracle.answer(&suggest).expect("engine builds")),
        render(&QueryAnswer::Suggestion(oracle.suggest(&constraints()))),
    );

    // Survey ≡ Oracle::survey at the same PE count.
    let survey =
        Query::default().with_constraints(constraints()).with_mode(QueryMode::Survey { pes: 16 });
    assert_eq!(
        render(&oracle.answer(&survey).expect("engine builds")),
        render(&QueryAnswer::Survey(oracle.survey(16, &constraints()))),
    );

    // TopK(k) ≡ Oracle::search with top_k = Some(k), whatever the query's
    // own constraints said.
    let top = Query::top_k(5).with_constraints(constraints());
    let mut expected = constraints();
    expected.top_k = Some(5);
    assert_eq!(
        render(&oracle.answer(&top).expect("engine builds")),
        render(&QueryAnswer::Ranked(oracle.search(&expected))),
    );

    // FullRank ≡ Oracle::search with top_k = None.
    let full = Query::default()
        .with_constraints(Constraints { top_k: Some(3), ..constraints() })
        .with_mode(QueryMode::FullRank);
    let mut expected = constraints();
    expected.top_k = None;
    assert_eq!(
        render(&oracle.answer(&full).expect("engine builds")),
        render(&QueryAnswer::Ranked(oracle.search(&expected))),
    );
}

#[test]
fn query_run_matches_a_hand_built_oracle() {
    let (model, cluster, config) = workload();
    let oracle = Oracle::new(&model, &cluster.device, &cluster, config);

    for mode in
        [QueryMode::Suggest, QueryMode::TopK(4), QueryMode::FullRank, QueryMode::Survey { pes: 16 }]
    {
        let query = Query::default()
            .with_model(model.clone())
            .with_config(config)
            .with_cluster(cluster.clone())
            .with_constraints(constraints())
            .with_mode(mode);
        let standalone = query.run().expect("complete query");
        assert_eq!(
            render(&standalone),
            render(&oracle.answer(&query).expect("engine builds")),
            "{mode:?}"
        );
    }
}

#[test]
fn incomplete_queries_are_rejected_with_a_reason() {
    let err = Query::top_k(3).run().expect_err("no workload");
    assert!(err.contains("model"), "{err}");

    let (model, cluster, _) = workload();
    let err = Query::top_k(3)
        .with_model(model)
        .with_cluster(cluster)
        .run()
        .expect_err("still missing the config");
    assert!(err.contains("config"), "{err}");
}

#[test]
fn queries_survive_the_wire_representation() {
    let (model, cluster, config) = workload();
    let query = Query::top_k(7)
        .with_model(model.clone())
        .with_config(config)
        .with_cluster(cluster)
        .with_constraints(constraints());

    let rendered = query.to_json().expect("model present").render();
    let reparsed = Json::parse(&rendered).expect("wire bytes parse");
    let resolve = |name: &str| (name == model.name).then(|| model.clone());
    let back = Query::from_json(&reparsed, &resolve).expect("wire query resolves");
    assert_eq!(back, query);

    // And the round-tripped query answers identically.
    assert_eq!(render(&back.run().expect("complete")), render(&query.run().expect("complete")),);
}

#[test]
fn constraint_edge_cases_yield_typed_answers_not_panics() {
    let (model, cluster, config) = workload();
    let base = Query::default().with_model(model.clone()).with_config(config).with_cluster(cluster);

    // top_k = 0: a valid ranked request that keeps nothing.
    let answer = base
        .clone()
        .with_constraints(constraints())
        .with_mode(QueryMode::TopK(0))
        .run()
        .expect("top_k = 0 is a valid, if useless, request");
    let report = answer.report().expect("ranked mode answers ranked");
    assert!(report.ranked.is_empty(), "top_k = 0 keeps no candidates");
    assert!(report.enumerated > 0, "the space was still enumerated");

    // max_pes = 1, below every parallel strategy's smallest budget: only
    // serial can be ranked.
    let answer = base
        .clone()
        .with_constraints(Constraints { max_pes: 1, ..constraints() })
        .with_mode(QueryMode::FullRank)
        .run()
        .expect("a serial-only budget still answers");
    let report = answer.report().expect("ranked mode answers ranked");
    assert!(!report.ranked.is_empty(), "serial always fits a one-PE budget");
    assert!(report.ranked.iter().all(|c| c.strategy.total_pes() == 1), "one PE max");

    // An empty strategy space (memory capacity below any candidate's
    // footprint): typed empty answers across modes, never a panic.
    let starved = Constraints { memory_capacity_bytes: 1.0, ..constraints() };
    let answer = base
        .clone()
        .with_constraints(starved)
        .with_mode(QueryMode::Suggest)
        .run()
        .expect("suggest still answers");
    assert!(answer.suggestion().is_none(), "nothing fits in one byte");
    let answer =
        base.with_constraints(starved).with_mode(QueryMode::FullRank).run().expect("ranked");
    let report = answer.report().expect("ranked mode answers ranked");
    assert!(report.ranked.is_empty(), "nothing fits in one byte");
    assert_eq!(report.pruned_by_memory, report.enumerated, "everything was memory-pruned");
}
