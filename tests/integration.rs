//! Cross-crate integration tests: the oracle, the model zoo, the simulator
//! and the threaded parallel engine working together end to end.

use paradl::parallel::{data_parallel_gradients, filter_parallel_forward};
use paradl::prelude::*;
use paradl::tensor::softmax_cross_entropy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn oracle_projects_every_paper_model_and_strategy() {
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    for model in paradl::models::imagenet_models() {
        let config = TrainingConfig::imagenet(32 * 64);
        let oracle = Oracle::new(&model, &device, &cluster, config);
        for projection in oracle.survey(64, &Constraints::default()) {
            assert!(
                projection.cost.epoch_time().is_finite() && projection.cost.epoch_time() > 0.0,
                "{}: {} produced a non-finite time",
                model.name,
                projection.cost.strategy
            );
        }
    }
}

#[test]
fn oracle_and_simulator_agree_within_paper_accuracy_for_data_parallelism() {
    // The paper reports ~96% average accuracy for data parallelism; with the
    // ideal overhead model (no framework noise) the simulator and the oracle
    // differ only by the homogeneous-link approximation, so accuracy should
    // comfortably exceed 75% at every scale and 90% on average.
    let model = paradl::models::resnet50();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let sim =
        Simulator::new(&device, &cluster).with_overheads(OverheadModel::ideal()).with_samples(1);
    let mut accs = Vec::new();
    for p in [16usize, 64, 256] {
        let config = TrainingConfig::imagenet(32 * p);
        let oracle = Oracle::new(&model, &device, &cluster, config);
        let projected = oracle.project(Strategy::Data { p }).cost;
        let measured = sim.simulate(&model, &config, Strategy::Data { p });
        let acc =
            projection_accuracy(projected.per_iteration().total(), measured.per_iteration.total());
        assert!(acc > 0.75, "p={p}: accuracy {acc}");
        accs.push(acc);
    }
    let mean = accs.iter().sum::<f64>() / accs.len() as f64;
    assert!(mean > 0.9, "mean data-parallel accuracy {mean}");
}

#[test]
fn suggested_strategy_for_cosmoflow_is_a_spatial_hybrid() {
    // CosmoFlow at 512³ cannot run under data parallelism (memory); the
    // oracle must steer towards a spatial or data+spatial strategy, which is
    // the paper's headline qualitative result (Figures 4 and 5).
    let model = paradl::models::cosmoflow_with_input(512);
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    // γ = 0.5: assume an aggressively buffer-reusing framework; even then the
    // data-parallel footprint is far beyond a 16 GB V100.
    let config = TrainingConfig { memory_reuse: 0.5, ..TrainingConfig::cosmoflow(4) };
    let oracle = Oracle::new(&model, &device, &cluster, config);
    let data = oracle.project(Strategy::Data { p: 4 });
    assert!(data.cost.memory_per_pe_bytes > V100_MEMORY_BYTES);
    let best = oracle
        .suggest(&Constraints { max_pes: 256, ..Default::default() })
        .expect("some strategy must fit");
    assert!(
        matches!(best.cost.strategy.kind(), StrategyKind::Spatial | StrategyKind::DataSpatial),
        "expected a spatial strategy, got {}",
        best.cost.strategy
    );
}

#[test]
fn weak_scaling_sweep_is_monotone_in_communication() {
    let model = paradl::models::resnet152();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let config = TrainingConfig::imagenet(512);
    let oracle = Oracle::new(&model, &device, &cluster, config);
    let points = sweep(
        &oracle,
        StrategyKind::Data,
        &powers_of_two(16, 1024),
        ScalingMode::Weak { samples_per_pe: 16 },
        &Constraints::default(),
    );
    assert_eq!(points.len(), 7);
    for w in points.windows(2) {
        assert!(
            w[1].cost.per_iteration().gradient_exchange
                >= w[0].cost.per_iteration().gradient_exchange
        );
    }
}

#[test]
fn parallel_engine_matches_sequential_engine_for_a_random_model() {
    let config = SmallCnnConfig {
        in_channels: 2,
        input_side: 8,
        conv1_filters: 4,
        conv2_filters: 8,
        classes: 4,
    };
    let net = SmallCnn::new(config, 5);
    let mut rng = StdRng::seed_from_u64(11);
    let x = Tensor::random(&[4, 2, 8, 8], 1.0, &mut rng);
    let labels: Vec<usize> = (0..4).map(|_| rng.gen_range(0..4)).collect();
    let trace = net.forward(&x);
    let (_, d_logits) = softmax_cross_entropy(&trace.logits, &labels);
    let reference = net.backward(&trace, &d_logits);

    let dp = data_parallel_gradients(&net, &x, &labels, 2);
    assert!(dp[0].conv1_w.approx_eq(&reference.conv1_w, 1e-4));
    let fp = filter_parallel_forward(&net, &x, 2);
    assert!(fp[0].approx_eq(&trace.logits, 1e-4));
}

#[test]
fn synthetic_dataset_feeds_training_configs() {
    let spec = DatasetSpec::imagenet();
    let cfg = spec.training_config(2048);
    assert_eq!(cfg.iterations_per_epoch(), spec.samples / 2048);
    let ds = SyntheticDataset::new(DatasetSpec::tiny(64, 8, 10), 3);
    let batches = ds.epoch_batches(16, 0);
    assert_eq!(batches.len(), 4);
    let sample = ds.sample(batches[0][0]);
    assert_eq!(sample.values.len(), 3 * 8 * 8);
}

#[test]
fn table6_diagnoses_are_consistent_with_projections() {
    // Filter parallelism of VGG16 at large batch should be flagged as
    // dominated by layer-wise communication (paper §5.3.1).
    let model = paradl::models::vgg16();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let config = TrainingConfig::imagenet(64);
    let oracle = Oracle::new(&model, &device, &cluster, config);
    let filt = oracle.project(Strategy::Filter { p: 64 });
    let diag = diagnose_default(&filt.cost);
    assert!(diag.findings.iter().any(|(name, _)| name.contains("layer-wise")));
    // And the static Table 6 matrix lists that limitation for filter/channel.
    let rows = table6();
    assert!(rows
        .iter()
        .any(|r| r.remark == "Layer-wise comm." && r.strategies.contains(&StrategyKind::Filter)));
}
