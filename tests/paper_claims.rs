//! Tests tied to specific quantitative or qualitative claims of the paper,
//! so a regression in the reproduction is caught as a broken "claim".

use paradl::prelude::*;

fn imagenet_oracle(model: &Model, batch: usize) -> (DeviceProfile, ClusterSpec, TrainingConfig) {
    let _ = model;
    (DeviceProfile::v100(), ClusterSpec::paper_system(), TrainingConfig::imagenet(batch))
}

/// Table 5: parameter counts of the evaluated models.
#[test]
fn table5_model_sizes() {
    assert!((24e6..28e6).contains(&(paradl::models::resnet50().total_params() as f64)));
    assert!((55e6..65e6).contains(&(paradl::models::resnet152().total_params() as f64)));
    assert!((130e6..150e6).contains(&(paradl::models::vgg16().total_params() as f64)));
    assert!((1e6..6e6).contains(&(paradl::models::cosmoflow().total_params() as f64)));
}

/// §5.3.4: filter parallelism of VGG16 / ResNet-50 cannot exceed 64 GPUs
/// (the minimum filter count), and pipeline parallelism is bounded by the
/// number of layers.
#[test]
fn scaling_limits_match_section_5_3_4() {
    let vgg = paradl::models::vgg16();
    let resnet = paradl::models::resnet50();
    assert_eq!(Strategy::max_pes(&vgg, 4096, StrategyKind::Filter), 64);
    assert_eq!(Strategy::max_pes(&resnet, 4096, StrategyKind::Filter), 64);
    assert!(Strategy::Filter { p: 128 }.validate(&vgg, 4096).is_err());
    assert!(Strategy::Pipeline { p: 4, segments: 8 }.validate(&resnet, 4096).is_ok());
    assert!(Strategy::Pipeline { p: resnet.num_layers() + 1, segments: 8 }
        .validate(&resnet, 4096)
        .is_err());
}

/// Figure 7: the weight update is a larger share of compute for VGG16 (large
/// FC layers) than for ResNet-50, reaching the ~10–15% the paper reports.
#[test]
fn figure7_weight_update_share_grows_with_model_size() {
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let share = |model: &Model| {
        let (_, _, config) = imagenet_oracle(model, 1024);
        let est = estimate(model, &device, &cluster, &config, Strategy::Data { p: 32 });
        est.per_epoch.weight_update / est.per_epoch.compute()
    };
    let resnet = paradl::models::resnet50();
    let vgg = paradl::models::vgg16();
    let s_resnet = share(&resnet);
    let s_vgg = share(&vgg);
    assert!(s_vgg > s_resnet, "VGG16 share {s_vgg} vs ResNet-50 {s_resnet}");
    // The absolute share depends on the per-GPU batch and optimizer cost; the
    // analytical V100 profile puts VGG16 around 1–2% at B=1024 (it reaches the
    // paper's ~15% at small per-GPU batches), so we only pin the ordering and
    // a non-trivial floor here.
    assert!(s_vgg > 0.008, "VGG16 weight-update share {s_vgg}");
}

/// §5.3.1: with a batch of ≥32 samples the layer-wise communication of
/// filter/channel parallelism exceeds the gradient-exchange communication of
/// data parallelism, even though the activations are smaller than the weights.
#[test]
fn layerwise_comm_exceeds_gradient_exchange_at_batch_32() {
    let model = paradl::models::resnet50();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let config = TrainingConfig::imagenet(32 * 16);
    let filter = estimate(&model, &device, &cluster, &config, Strategy::Filter { p: 16 });
    let data = estimate(&model, &device, &cluster, &config, Strategy::Data { p: 16 });
    assert!(
        filter.per_epoch.fb_collective > data.per_epoch.gradient_exchange,
        "filter comm {} vs data comm {}",
        filter.per_epoch.fb_collective,
        data.per_epoch.gradient_exchange
    );
}

/// §5.3.2 (memory redundancy): filter/channel parallelism does not reduce the
/// activation footprint, so its per-PE memory stays close to serial for
/// activation-heavy models, while spatial parallelism divides it.
#[test]
fn memory_redundancy_of_model_horizontal_parallelism() {
    let model = paradl::models::cosmoflow();
    let config = TrainingConfig::cosmoflow(4);
    let serial = memory_per_pe(&model, &config, Strategy::Serial);
    let filter = memory_per_pe(&model, &config, Strategy::Filter { p: 16 });
    let spatial =
        memory_per_pe(&model, &config, Strategy::Spatial { split: SpatialSplit::balanced_3d(16) });
    assert!(filter > 0.9 * serial, "filter should barely help: {filter} vs {serial}");
    assert!(spatial < 0.2 * serial, "spatial should divide activations: {spatial} vs {serial}");
}

/// Figure 5: the Data+Spatial hybrid keeps scaling CosmoFlow as data groups
/// are added (near-perfect scaling on the log axis).
#[test]
fn figure5_data_spatial_scaling_is_nearly_linear() {
    let model = paradl::models::cosmoflow();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let config = TrainingConfig::cosmoflow(64);
    let oracle = Oracle::new(&model, &device, &cluster, config);
    let split = SpatialSplit::balanced_3d(16);
    let t1 = oracle.project(Strategy::DataSpatial { p1: 1, split }).cost.per_epoch.forward_backward;
    let t16 =
        oracle.project(Strategy::DataSpatial { p1: 16, split }).cost.per_epoch.forward_backward;
    let speedup = t1 / t16;
    assert!((14.0..=16.5).contains(&speedup), "compute speedup with 16 data groups = {speedup}");
}

/// §5.2: the hierarchical (leader-based) Allreduce of Data+Spatial costs more
/// than the flat data-parallel Allreduce — the paper observes more than 2×.
#[test]
fn hierarchical_allreduce_overhead_of_data_spatial() {
    let model = paradl::models::vgg16();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let config = TrainingConfig::imagenet(1024);
    let p = 64usize;
    let ds = estimate(
        &model,
        &device,
        &cluster,
        &config,
        Strategy::DataSpatial { p1: p / 4, split: SpatialSplit::balanced_2d(4) },
    );
    let data = estimate(&model, &device, &cluster, &config, Strategy::Data { p });
    let ratio = ds.per_epoch.gradient_exchange / data.per_epoch.gradient_exchange;
    assert!(ratio > 1.5, "hierarchical/flat Allreduce ratio = {ratio}");
}

/// Headline claim (§5.2): across models and strategies the oracle's average
/// accuracy against the measured (simulated) runs is well above 80%, and data
/// parallelism is the most accurately predicted strategy.
#[test]
fn headline_average_accuracy_against_simulator() {
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let sim = Simulator::new(&device, &cluster)
        .with_overheads(OverheadModel::chainermnx_quiet())
        .with_samples(2);
    let model = paradl::models::resnet50();
    let mut accs = Vec::new();
    let mut data_accs = Vec::new();
    for p in [16usize, 64] {
        let config = TrainingConfig::imagenet(32 * p);
        let oracle = Oracle::new(&model, &device, &cluster, config);
        for strategy in [
            Strategy::Data { p },
            Strategy::DataFilter { p1: p / 4, p2: 4 },
            Strategy::Filter { p: 16 },
        ] {
            let projected = oracle.project(strategy).cost;
            let measured = sim.simulate(&model, &config, strategy);
            let acc = projection_accuracy(
                projected.per_iteration().total(),
                measured.per_iteration.total(),
            );
            accs.push(acc);
            if matches!(strategy, Strategy::Data { .. }) {
                data_accs.push(acc);
            }
        }
    }
    let mean = accs.iter().sum::<f64>() / accs.len() as f64;
    let data_mean = data_accs.iter().sum::<f64>() / data_accs.len() as f64;
    // The simulator routes most ring hops over NVLink while the oracle prices
    // every hop at the bottleneck link, so the filter/hybrid points pull the
    // mean below the paper's 86.7%; the floor here guards against regressions
    // rather than matching the headline number exactly.
    assert!(mean > 0.55, "average accuracy {mean}");
    assert!(data_mean >= mean - 0.05, "data parallelism accuracy {data_mean} vs mean {mean}");
}
