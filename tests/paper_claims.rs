//! Tests tied to specific quantitative or qualitative claims of the paper,
//! so a regression in the reproduction is caught as a broken "claim". Every
//! test's doc comment names the paper table/figure/section it mirrors; the
//! §5.2 oracle-validation claims are driven by the conformance subsystem
//! (`paradl_sim::conformance`), the same oracle-vs-measured loop the paper
//! runs against ChainerMNX on the 1024-GPU cluster.

use paradl::prelude::*;

fn imagenet_oracle(model: &Model, batch: usize) -> (DeviceProfile, ClusterSpec, TrainingConfig) {
    let _ = model;
    (DeviceProfile::v100(), ClusterSpec::paper_system(), TrainingConfig::imagenet(batch))
}

/// Table 5: parameter counts of the evaluated models.
#[test]
fn table5_model_sizes() {
    assert!((24e6..28e6).contains(&(paradl::models::resnet50().total_params() as f64)));
    assert!((55e6..65e6).contains(&(paradl::models::resnet152().total_params() as f64)));
    assert!((130e6..150e6).contains(&(paradl::models::vgg16().total_params() as f64)));
    assert!((1e6..6e6).contains(&(paradl::models::cosmoflow().total_params() as f64)));
}

/// §5.3.4 and Table 3's scaling-limit column: filter parallelism of VGG16 /
/// ResNet-50 cannot exceed 64 GPUs (the minimum filter count), and pipeline
/// parallelism is bounded by the number of layers.
#[test]
fn scaling_limits_match_section_5_3_4() {
    let vgg = paradl::models::vgg16();
    let resnet = paradl::models::resnet50();
    assert_eq!(Strategy::max_pes(&vgg, 4096, StrategyKind::Filter), 64);
    assert_eq!(Strategy::max_pes(&resnet, 4096, StrategyKind::Filter), 64);
    assert!(Strategy::Filter { p: 128 }.validate(&vgg, 4096).is_err());
    assert!(Strategy::Pipeline { p: 4, segments: 8 }.validate(&resnet, 4096).is_ok());
    assert!(Strategy::Pipeline { p: resnet.num_layers() + 1, segments: 8 }
        .validate(&resnet, 4096)
        .is_err());
}

/// Figure 7: the weight update is a larger share of compute for VGG16 (large
/// FC layers) than for ResNet-50, reaching the ~10–15% the paper reports.
#[test]
fn figure7_weight_update_share_grows_with_model_size() {
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let share = |model: &Model| {
        let (_, _, config) = imagenet_oracle(model, 1024);
        let est = estimate(model, &device, &cluster, &config, Strategy::Data { p: 32 });
        est.per_epoch.weight_update / est.per_epoch.compute()
    };
    let resnet = paradl::models::resnet50();
    let vgg = paradl::models::vgg16();
    let s_resnet = share(&resnet);
    let s_vgg = share(&vgg);
    assert!(s_vgg > s_resnet, "VGG16 share {s_vgg} vs ResNet-50 {s_resnet}");
    // The absolute share depends on the per-GPU batch and optimizer cost; the
    // analytical V100 profile puts VGG16 around 1–2% at B=1024 (it reaches the
    // paper's ~15% at small per-GPU batches), so we only pin the ordering and
    // a non-trivial floor here.
    assert!(s_vgg > 0.008, "VGG16 weight-update share {s_vgg}");
}

/// §5.3.1 (Figure 3's FB-Allgather/FB-Allreduce vs GE columns): with a batch
/// of ≥32 samples the layer-wise communication of filter/channel parallelism
/// exceeds the gradient-exchange communication of data parallelism, even
/// though the activations are smaller than the weights.
#[test]
fn layerwise_comm_exceeds_gradient_exchange_at_batch_32() {
    let model = paradl::models::resnet50();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let config = TrainingConfig::imagenet(32 * 16);
    let filter = estimate(&model, &device, &cluster, &config, Strategy::Filter { p: 16 });
    let data = estimate(&model, &device, &cluster, &config, Strategy::Data { p: 16 });
    assert!(
        filter.per_epoch.fb_collective > data.per_epoch.gradient_exchange,
        "filter comm {} vs data comm {}",
        filter.per_epoch.fb_collective,
        data.per_epoch.gradient_exchange
    );
}

/// §5.3.2 and Table 6 (memory redundancy): filter/channel parallelism does
/// not reduce the activation footprint, so its per-PE memory stays close to
/// serial for activation-heavy models, while spatial parallelism divides it.
#[test]
fn memory_redundancy_of_model_horizontal_parallelism() {
    let model = paradl::models::cosmoflow();
    let config = TrainingConfig::cosmoflow(4);
    let serial = memory_per_pe(&model, &config, Strategy::Serial);
    let filter = memory_per_pe(&model, &config, Strategy::Filter { p: 16 });
    let spatial =
        memory_per_pe(&model, &config, Strategy::Spatial { split: SpatialSplit::balanced_3d(16) });
    assert!(filter > 0.9 * serial, "filter should barely help: {filter} vs {serial}");
    assert!(spatial < 0.2 * serial, "spatial should divide activations: {spatial} vs {serial}");
}

/// Figure 5: the Data+Spatial hybrid keeps scaling CosmoFlow as data groups
/// are added (near-perfect scaling on the log axis).
#[test]
fn figure5_data_spatial_scaling_is_nearly_linear() {
    let model = paradl::models::cosmoflow();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let config = TrainingConfig::cosmoflow(64);
    let oracle = Oracle::new(&model, &device, &cluster, config);
    let split = SpatialSplit::balanced_3d(16);
    let t1 = oracle.project(Strategy::DataSpatial { p1: 1, split }).cost.per_epoch.forward_backward;
    let t16 =
        oracle.project(Strategy::DataSpatial { p1: 16, split }).cost.per_epoch.forward_backward;
    let speedup = t1 / t16;
    assert!((14.0..=16.5).contains(&speedup), "compute speedup with 16 data groups = {speedup}");
}

/// §5.2 (Figure 3's GE column for Data+Spatial vs Data): the hierarchical
/// (leader-based) Allreduce of Data+Spatial costs more than the flat
/// data-parallel Allreduce — the paper observes more than 2×.
#[test]
fn hierarchical_allreduce_overhead_of_data_spatial() {
    let model = paradl::models::vgg16();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let config = TrainingConfig::imagenet(1024);
    let p = 64usize;
    let ds = estimate(
        &model,
        &device,
        &cluster,
        &config,
        Strategy::DataSpatial { p1: p / 4, split: SpatialSplit::balanced_2d(4) },
    );
    let data = estimate(&model, &device, &cluster, &config, Strategy::Data { p });
    let ratio = ds.per_epoch.gradient_exchange / data.per_epoch.gradient_exchange;
    assert!(ratio > 1.5, "hierarchical/flat Allreduce ratio = {ratio}");
}

/// Headline claim (§5.2, Figure 3's accuracy labels; the paper reports an
/// 86.74% average and up to 97.57% for data parallelism): the oracle's
/// projections track measured training steps. Driven by the conformance
/// subsystem — one grid sweep picks each cell's winners, every winner is
/// replayed through the simulator, and the `FidelityReport` carries the
/// §5.2-shaped statistics this test asserts on.
#[test]
fn section_5_2_oracle_tracks_simulated_measurements() {
    let constraints = Constraints { max_pes: 64, top_k: Some(5), ..Constraints::default() };
    let grid = QueryGrid::new(constraints)
        .with_model(paradl::models::resnet50(), TrainingConfig::imagenet(512))
        .with_batches([512usize, 1024])
        .with_cluster(ClusterSpec::paper_system());
    let report = Conformance::new()
        .with_overheads(OverheadModel::chainermnx_quiet())
        .with_samples(2)
        .run(&grid)
        .expect("every cell has feasible winners");

    // Every cell was replayed, winner-deep.
    assert_eq!(report.cells.len(), grid.num_queries());
    assert!(report.num_samples() >= 2 * 5, "replayed {}", report.num_samples());

    // The simulator routes most ring hops over NVLink while the oracle
    // prices every hop at the bottleneck link, so the mean sits below the
    // paper's 86.7%; the floor guards against regressions of the agreement.
    assert!(
        report.overall.mean_accuracy > 0.55,
        "average accuracy {:.3}",
        report.overall.mean_accuracy
    );

    // §5.2: data parallelism is the most accurately predicted strategy —
    // no other replayed family beats it by more than a rounding margin.
    let data = report.family(StrategyKind::Data).expect("data candidates among the winners");
    for family in &report.families {
        assert!(
            data.stats.mean_accuracy >= family.stats.mean_accuracy - 0.05,
            "data parallelism accuracy {:.3} well below {} accuracy {:.3}",
            data.stats.mean_accuracy,
            family.family,
            family.stats.mean_accuracy
        );
    }

    // §5.2's purpose: the oracle *guides* — its candidate ordering must
    // correlate with the measured ordering inside each cell.
    let rho = report.mean_rank_correlation.expect("multi-candidate cells");
    assert!(rho > 0.5, "mean rank correlation {rho:.3}");
}

/// §5.2's direction of error under framework overheads (Figure 8's split /
/// concat and imperfect-scaling effects): adding the measured framework's
/// overheads can only slow the simulated runs, so the oracle's signed error
/// becomes more negative (it under-projects measured time) relative to an
/// ideal framework.
#[test]
fn section_5_2_overheads_bias_signed_error_downward() {
    let constraints = Constraints { max_pes: 32, top_k: Some(3), ..Constraints::default() };
    let grid = QueryGrid::new(constraints)
        .with_model(paradl::models::resnet50(), TrainingConfig::imagenet(512))
        .with_batches([512usize])
        .with_cluster(ClusterSpec::paper_system());
    // Deterministic overheads (probability-1 triggers, no symmetric noise):
    // every replay's compute is stretched ×1.5 and every collective ×≥1.5,
    // so the comparison is a theorem, not a draw of the stall/congestion
    // coin flips (which the paper's probabilistic model would make
    // seed-dependent at this replay count).
    let always_slow = OverheadModel {
        conv_split_inefficiency: 0.05,
        split_concat_per_layer: 500e-6,
        memory_stall_probability: 1.0,
        memory_stall_factor: 1.5,
        congestion_probability: 1.0,
        congestion_max_factor: 3.0,
        compute_noise: 0.0,
    };
    let ideal = Conformance::new()
        .with_overheads(OverheadModel::ideal())
        .with_samples(1)
        .run(&grid)
        .expect("winners");
    let measured =
        Conformance::new().with_overheads(always_slow).with_samples(1).run(&grid).expect("winners");
    assert!(
        measured.overall.mean_signed_error < ideal.overall.mean_signed_error,
        "framework overheads should lower the signed error: {:.4} vs ideal {:.4}",
        measured.overall.mean_signed_error,
        ideal.overall.mean_signed_error
    );
}
